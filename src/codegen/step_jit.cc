#include "codegen/step_jit.h"

#include <cstring>
#include <functional>
#include <map>
#include <new>
#include <utility>

#include "codegen/exec_arena.h"
#include "expr/kernels.h"
#include "wf/plan.h"

// The emitter proper exists only on x86-64 unix builds with the CMake
// option on; everything else compiles the all-bailout stubs at the bottom
// of this file (the forced-fallback CI configuration exercises them).
#if defined(EXOTICA_NATIVE_CODEGEN) && EXOTICA_NATIVE_CODEGEN && \
    defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
#define EXO_NATIVE_JIT 1
#else
#define EXO_NATIVE_JIT 0
#endif

#if EXO_NATIVE_JIT
#include "codegen/asm_x64.h"
#endif

namespace exotica::codegen {

NativeStepUnit::NativeStepUnit() = default;
NativeStepUnit::~NativeStepUnit() = default;
NativeCondition::~NativeCondition() = default;

size_t NativeStepUnit::code_bytes() const {
  return arena_ ? arena_->used() : 0;
}

#if EXO_NATIVE_JIT

namespace {

using expr::CompiledCondition;
using TOp = CompiledCondition::TOp;
using TInstr = CompiledCondition::TInstr;
using Label = Assembler::Label;

// ---------------------------------------------------------------------------
// data::Value layout probe.
//
// The generated code reads container slots as raw bytes: an 8-byte payload
// at a fixed offset inside each ~40-byte Value, and a one-byte variant
// discriminant. The standard library does not document that layout, so it
// is discovered at runtime by constructing Values in pre-zeroed storage
// and diffing the bytes; any surprise — multiple differing bytes, payload
// not where expected — fails the probe and disables native codegen
// entirely (a clean bailout, not a miscompile).
// ---------------------------------------------------------------------------

struct ValueLayout {
  uint32_t stride = 0;
  int32_t payload_off = -1;
  int32_t disc_off = -1;
  uint8_t disc_null = 0;
  uint8_t disc_long = 0;
  uint8_t disc_float = 0;
  uint8_t disc_bool = 0;
  bool ok = false;
};

struct ProbeBuf {
  alignas(data::Value) unsigned char bytes[sizeof(data::Value)];
  data::Value* v = nullptr;

  template <typename... Args>
  data::Value* Make(Args&&... args) {
    std::memset(bytes, 0, sizeof(bytes));
    // Barrier between the zero-fill and the placement new: the new
    // object's lifetime lets the compiler dead-store-eliminate the
    // memset (the ctor-untouched bytes then read as stack garbage and
    // the probe sees a nondeterministic background). The clobber pins
    // the zeros as observable before construction.
    asm volatile("" : : "r"(bytes) : "memory");
    v = new (bytes) data::Value(std::forward<Args>(args)...);
    asm volatile("" : : "r"(bytes) : "memory");
    return v;
  }

  // Object representation of the live Value, read through the pointer
  // placement-new returned (scanning the original array directly is the
  // dual folding hazard: those reads constant-fold to the memset zeros
  // in IPA clones of the probe).
  void Snapshot(unsigned char* out) const {
    asm volatile("" : : "r"(v) : "memory");
    std::memcpy(out, reinterpret_cast<const unsigned char*>(v),
                sizeof(data::Value));
  }
};

ValueLayout ProbeValueLayout() {
  ValueLayout l;
  l.stride = static_cast<uint32_t>(sizeof(data::Value));
  ProbeBuf a, b;

  unsigned char ia[sizeof(data::Value)];
  unsigned char ib[sizeof(data::Value)];

  // Payload offset: a magic int64 must appear at exactly one offset.
  const int64_t magic = static_cast<int64_t>(0x5AD0BEEF12345678ll);
  data::Value* v = a.Make(magic);
  a.Snapshot(ia);
  v->~Value();
  int payload = -1;
  for (size_t off = 0; off + 8 <= sizeof(data::Value); ++off) {
    int64_t got;
    std::memcpy(&got, ia + off, 8);
    if (got == magic) {
      if (payload >= 0) return l;
      payload = static_cast<int>(off);
    }
  }
  if (payload < 0) return l;

  // Doubles must share the same payload offset (one union).
  uint64_t dbits = 0x400921FB54442D18ull;  // pi
  double dmagic;
  std::memcpy(&dmagic, &dbits, 8);
  v = a.Make(dmagic);
  a.Snapshot(ia);
  v->~Value();
  uint64_t got;
  std::memcpy(&got, ia + payload, 8);
  if (got != dbits) return l;

  // Discriminant: with identical (all-zero) payload bits, a long 0 and a
  // float 0.0 may differ in exactly one byte.
  data::Value* x = a.Make(static_cast<int64_t>(0));
  data::Value* y = b.Make(0.0);
  a.Snapshot(ia);
  b.Snapshot(ib);
  x->~Value();
  y->~Value();
  int disc = -1;
  for (size_t off = 0; off < sizeof(data::Value); ++off) {
    if (ia[off] != ib[off]) {
      if (disc >= 0) return l;
      disc = static_cast<int>(off);
    }
  }
  if (disc < 0) return l;
  // The discriminant must not alias the payload.
  if (disc >= payload && disc < payload + 8) return l;

  l.payload_off = payload;
  l.disc_off = disc;

  v = a.Make();
  a.Snapshot(ia);
  v->~Value();
  l.disc_null = ia[disc];
  v = a.Make(static_cast<int64_t>(0));
  a.Snapshot(ia);
  v->~Value();
  l.disc_long = ia[disc];
  v = a.Make(0.0);
  a.Snapshot(ia);
  v->~Value();
  l.disc_float = ia[disc];
  v = a.Make(true);
  a.Snapshot(ia);
  v->~Value();
  l.disc_bool = ia[disc];
  if (ia[payload] != 1) return l;

  // Distinct codes, or the null check below would misfire.
  const uint8_t codes[] = {l.disc_null, l.disc_long, l.disc_float,
                           l.disc_bool};
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      if (codes[i] == codes[j]) return l;
    }
  }
  l.ok = true;
  return l;
}

const ValueLayout& GetValueLayout() {
  static const ValueLayout layout = ProbeValueLayout();
  return layout;
}

// ---------------------------------------------------------------------------
// Typed condition body: static analysis + emission.
//
// Typed programs are postfix with exclusively forward jumps, so the
// operand-stack depth at every pc is a static property. The emitter
// verifies that (bailing out on any inconsistency rather than trusting
// the compiler) and then assigns stack cell d the frame slot [rsp + 8d] —
// no stack-pointer register, every operand access a fixed displacement.
// ---------------------------------------------------------------------------

struct TypedAnalysis {
  std::vector<int> depth;  ///< depth *before* each pc; [n] = final depth
  int max_depth = 0;
  bool ok = false;
};

TypedAnalysis AnalyzeTyped(const CompiledCondition& prog,
                           const ValueLayout& vl) {
  TypedAnalysis an;
  const std::vector<TInstr>& code = prog.typed_code();
  const size_t n = code.size();
  if (n == 0) return an;
  an.depth.assign(n + 1, -1);
  an.depth[0] = 0;

  auto merge = [&](size_t pc, int d) {
    if (an.depth[pc] < 0) {
      an.depth[pc] = d;
      return true;
    }
    return an.depth[pc] == d;
  };

  for (size_t pc = 0; pc < n; ++pc) {
    const TInstr& in = code[pc];
    const int d = an.depth[pc];
    if (d < 0) return an;  // unreachable instruction: bail
    int nd;
    switch (in.op) {
      case TOp::kConstI64:
      case TOp::kConstF64:
      case TOp::kConstB:
        if (in.a >= prog.typed_consts().size()) return an;
        nd = d + 1;
        break;
      case TOp::kLoadI64:
      case TOp::kLoadF64:
      case TOp::kLoadB: {
        // Slot displacements must encode as int32.
        const uint64_t end =
            (static_cast<uint64_t>(in.a) + 1) * vl.stride + 8;
        if (end > 0x7FFF0000ull) return an;
        if (in.b >= prog.names().size()) return an;
        nd = d + 1;
        break;
      }
      case TOp::kI64ToF64:
      case TOp::kNotB:
      case TOp::kNegI64:
      case TOp::kNegF64:
        if (d < 1) return an;
        nd = d;
        break;
      case TOp::kI64ToF64Under:
        if (d < 2) return an;
        nd = d;
        break;
      case TOp::kCmpEqI64:
      case TOp::kCmpNeI64:
      case TOp::kCmpLtI64:
      case TOp::kCmpLeI64:
      case TOp::kCmpGtI64:
      case TOp::kCmpGeI64:
      case TOp::kCmpEqF64:
      case TOp::kCmpNeF64:
      case TOp::kCmpLtF64:
      case TOp::kCmpLeF64:
      case TOp::kCmpGtF64:
      case TOp::kCmpGeF64:
      case TOp::kCmpEqB:
      case TOp::kCmpNeB:
      case TOp::kAddI64:
      case TOp::kSubI64:
      case TOp::kMulI64:
      case TOp::kDivI64:
      case TOp::kModI64:
      case TOp::kAddF64:
      case TOp::kSubF64:
      case TOp::kMulF64:
      case TOp::kDivF64:
        if (d < 2) return an;
        nd = d - 1;
        break;
      case TOp::kAndJumpFalse:
      case TOp::kOrJumpTrue: {
        if (d < 1) return an;
        // Jump target: strictly forward (the compiler only emits forward
        // short-circuit jumps), lands at depth d (pop, push the constant).
        if (in.a <= pc || in.a > n) return an;
        if (!merge(in.a, d)) return an;
        nd = d - 1;
        break;
      }
      default:
        return an;  // future opcode: bail, don't miscompile
    }
    if (nd > an.max_depth) an.max_depth = nd;
    if (nd > static_cast<int>(CompiledCondition::kMaxStack)) return an;
    if (!merge(pc + 1, nd)) return an;
  }
  if (an.depth[n] != 1) return an;
  an.ok = true;
  return an;
}

/// Maps (kind, aux) to an error-exit label; implementations collect the
/// requests and emit the stubs after the main body.
using ErrSink = std::function<Label(uint64_t kind, uint32_t aux)>;

enum class CmpKind { kEq, kNe, kLt, kLe, kGt, kGe };

/// Emits one NaN-correct double comparison of [rsp+xo] vs [rsp+yo]
/// (widening from int64 when `i64`), leaving the 0/1 result byte at
/// [rsp+xo]. Each sequence computes exactly expr::internal::CompareDouble:
/// kLe/kGe are the kernel's !(x>y) / !(x<y), true on NaN.
void EmitCompare(Assembler& as, CmpKind k, int32_t xo, int32_t yo, bool i64) {
  if (i64) {
    as.cvtsi2sd_xm(Xmm::xmm0, Reg::rsp, xo);
    as.cvtsi2sd_xm(Xmm::xmm1, Reg::rsp, yo);
  } else {
    as.movsd_xm(Xmm::xmm0, Reg::rsp, xo);
    as.movsd_xm(Xmm::xmm1, Reg::rsp, yo);
  }
  switch (k) {
    case CmpKind::kEq:  // x == y: ZF set and not unordered
      as.ucomisd_xx(Xmm::xmm0, Xmm::xmm1);
      as.setcc(Cond::e, Reg::rax);
      as.setcc(Cond::np, Reg::rcx);
      as.and_r8r8(Reg::rax, Reg::rcx);
      break;
    case CmpKind::kNe:  // x != y: not-equal or unordered
      as.ucomisd_xx(Xmm::xmm0, Xmm::xmm1);
      as.setcc(Cond::ne, Reg::rax);
      as.setcc(Cond::p, Reg::rcx);
      as.or_r8r8(Reg::rax, Reg::rcx);
      break;
    case CmpKind::kLt:  // x < y  ⇔ y > x; unordered → false
      as.ucomisd_xx(Xmm::xmm1, Xmm::xmm0);
      as.setcc(Cond::a, Reg::rax);
      break;
    case CmpKind::kLe:  // !(x > y); unordered → true
      as.ucomisd_xx(Xmm::xmm0, Xmm::xmm1);
      as.setcc(Cond::be, Reg::rax);
      break;
    case CmpKind::kGt:  // x > y; unordered → false
      as.ucomisd_xx(Xmm::xmm0, Xmm::xmm1);
      as.setcc(Cond::a, Reg::rax);
      break;
    case CmpKind::kGe:  // !(x < y) ⇔ !(y > x); unordered → true
      as.ucomisd_xx(Xmm::xmm1, Xmm::xmm0);
      as.setcc(Cond::be, Reg::rax);
      break;
  }
  as.mov_mr8(Reg::rsp, xo, Reg::rax);
}

/// GetSlot + null check, transcribing Container::GetSlot and RunTyped's
/// is_null guard: prefer values_[slot] when present and non-null, fall
/// back to the layout default, and error (names[name_idx]) when the
/// default is null too. Kind-independent: the payload is copied as raw
/// 8 bytes (the union's full width), so one sequence serves I64/F64/B
/// loads exactly like the interpreter's per-kind as_long/as_float/as_bool
/// reads of the same payload.
void EmitSlotLoad(Assembler& as, Reg ctx, const ValueLayout& vl, uint32_t slot,
                  uint32_t name_idx, int32_t dest_disp, const ErrSink& err) {
  const int32_t base = static_cast<int32_t>(slot * vl.stride);
  Label use_defaults = as.NewLabel();
  Label done = as.NewLabel();
  as.mov_rm(Reg::rax, ctx, 0);                          // values_.data()
  as.cmp_mi32(ctx, 8, static_cast<int32_t>(slot));      // values_.size()
  as.jcc(Cond::be, use_defaults);                       // size <= slot
  as.cmp_mi8(Reg::rax, base + vl.disc_off, vl.disc_null);
  as.jcc(Cond::e, use_defaults);
  as.mov_rm(Reg::rcx, Reg::rax, base + vl.payload_off);
  as.jmp(done);
  as.Bind(use_defaults);
  as.mov_rm(Reg::rax, ctx, 16);                         // defaults.data()
  as.cmp_mi8(Reg::rax, base + vl.disc_off, vl.disc_null);
  as.jcc(Cond::e, err(native_err::kNullRead, name_idx));
  as.mov_rm(Reg::rcx, Reg::rax, base + vl.payload_off);
  as.Bind(done);
  as.mov_mr(Reg::rsp, dest_disp, Reg::rcx);
}

/// Emits the full typed program body. Operand cells live at [rsp + 8d];
/// on success the result cell is [rsp + 0]. Data-dependent errors jump to
/// `err` labels. Returns false only on internal inconsistency (analysis
/// already vetted the program).
bool EmitTypedBody(Assembler& as, const CompiledCondition& prog,
                   const TypedAnalysis& an, Reg ctx, const ValueLayout& vl,
                   const ErrSink& err) {
  const std::vector<TInstr>& code = prog.typed_code();
  const std::vector<CompiledCondition::TCell>& consts = prog.typed_consts();
  const size_t n = code.size();

  std::map<uint32_t, Label> targets;
  for (const TInstr& in : code) {
    if (in.op == TOp::kAndJumpFalse || in.op == TOp::kOrJumpTrue) {
      if (targets.find(in.a) == targets.end()) {
        targets.emplace(in.a, as.NewLabel());
      }
    }
  }

  for (size_t pc = 0; pc < n; ++pc) {
    auto t = targets.find(static_cast<uint32_t>(pc));
    if (t != targets.end()) as.Bind(t->second);
    const TInstr& in = code[pc];
    const int d = an.depth[pc];
    const int32_t top = 8 * (d - 1);     // unary operand / jump operand
    const int32_t xo = 8 * (d - 2);      // binary lhs (also the result)
    const int32_t yo = 8 * (d - 1);      // binary rhs
    const int32_t push = 8 * d;          // slot a push lands in
    switch (in.op) {
      case TOp::kConstI64:
        as.mov_ri(Reg::rax, static_cast<uint64_t>(consts[in.a].i));
        as.mov_mr(Reg::rsp, push, Reg::rax);
        break;
      case TOp::kConstF64: {
        uint64_t bits;
        std::memcpy(&bits, &consts[in.a].f, 8);
        as.mov_ri(Reg::rax, bits);
        as.mov_mr(Reg::rsp, push, Reg::rax);
        break;
      }
      case TOp::kConstB:
        as.mov_ri(Reg::rax, consts[in.a].b ? 1 : 0);
        as.mov_mr(Reg::rsp, push, Reg::rax);
        break;
      case TOp::kLoadI64:
      case TOp::kLoadF64:
      case TOp::kLoadB:
        EmitSlotLoad(as, ctx, vl, in.a, in.b, push, err);
        break;
      case TOp::kI64ToF64:
        as.cvtsi2sd_xm(Xmm::xmm0, Reg::rsp, top);
        as.movsd_mx(Reg::rsp, top, Xmm::xmm0);
        break;
      case TOp::kI64ToF64Under:
        as.cvtsi2sd_xm(Xmm::xmm0, Reg::rsp, 8 * (d - 2));
        as.movsd_mx(Reg::rsp, 8 * (d - 2), Xmm::xmm0);
        break;
      case TOp::kNotB:
        as.xor_mi8(Reg::rsp, top, 1);
        break;
      case TOp::kNegI64:
        as.neg_m64(Reg::rsp, top);
        break;
      case TOp::kNegF64:
        // Flip the sign bit, exactly -double (works for NaN/inf/±0 too).
        as.mov_ri(Reg::rax, 0x8000000000000000ull);
        as.xor_mr64(Reg::rsp, top, Reg::rax);
        break;
      case TOp::kCmpEqI64: EmitCompare(as, CmpKind::kEq, xo, yo, true); break;
      case TOp::kCmpNeI64: EmitCompare(as, CmpKind::kNe, xo, yo, true); break;
      case TOp::kCmpLtI64: EmitCompare(as, CmpKind::kLt, xo, yo, true); break;
      case TOp::kCmpLeI64: EmitCompare(as, CmpKind::kLe, xo, yo, true); break;
      case TOp::kCmpGtI64: EmitCompare(as, CmpKind::kGt, xo, yo, true); break;
      case TOp::kCmpGeI64: EmitCompare(as, CmpKind::kGe, xo, yo, true); break;
      case TOp::kCmpEqF64: EmitCompare(as, CmpKind::kEq, xo, yo, false); break;
      case TOp::kCmpNeF64: EmitCompare(as, CmpKind::kNe, xo, yo, false); break;
      case TOp::kCmpLtF64: EmitCompare(as, CmpKind::kLt, xo, yo, false); break;
      case TOp::kCmpLeF64: EmitCompare(as, CmpKind::kLe, xo, yo, false); break;
      case TOp::kCmpGtF64: EmitCompare(as, CmpKind::kGt, xo, yo, false); break;
      case TOp::kCmpGeF64: EmitCompare(as, CmpKind::kGe, xo, yo, false); break;
      case TOp::kCmpEqB:
      case TOp::kCmpNeB:
        as.movzx_rm8(Reg::rax, Reg::rsp, xo);
        as.movzx_rm8(Reg::rcx, Reg::rsp, yo);
        as.cmp_r8r8(Reg::rax, Reg::rcx);
        as.setcc(in.op == TOp::kCmpEqB ? Cond::e : Cond::ne, Reg::rax);
        as.mov_mr8(Reg::rsp, xo, Reg::rax);
        break;
      case TOp::kAddI64:
        as.mov_rm(Reg::rax, Reg::rsp, xo);
        as.add_rm(Reg::rax, Reg::rsp, yo);
        as.mov_mr(Reg::rsp, xo, Reg::rax);
        break;
      case TOp::kSubI64:
        as.mov_rm(Reg::rax, Reg::rsp, xo);
        as.sub_rm(Reg::rax, Reg::rsp, yo);
        as.mov_mr(Reg::rsp, xo, Reg::rax);
        break;
      case TOp::kMulI64:
        as.mov_rm(Reg::rax, Reg::rsp, xo);
        as.imul_rm(Reg::rax, Reg::rsp, yo);
        as.mov_mr(Reg::rsp, xo, Reg::rax);
        break;
      case TOp::kDivI64:
      case TOp::kModI64:
        // Zero-check the divisor before touching the dividend, like the
        // interpreter's pre-pop guard.
        as.mov_rm(Reg::rcx, Reg::rsp, yo);
        as.test_rr(Reg::rcx, Reg::rcx);
        as.jcc(Cond::e, err(in.op == TOp::kDivI64 ? native_err::kDivZero
                                                  : native_err::kModZero,
                            0));
        as.mov_rm(Reg::rax, Reg::rsp, xo);
        as.cqo();
        as.idiv_r(Reg::rcx);
        as.mov_mr(Reg::rsp, xo,
                  in.op == TOp::kDivI64 ? Reg::rax : Reg::rdx);
        break;
      case TOp::kAddF64:
        as.movsd_xm(Xmm::xmm0, Reg::rsp, xo);
        as.addsd_xm(Xmm::xmm0, Reg::rsp, yo);
        as.movsd_mx(Reg::rsp, xo, Xmm::xmm0);
        break;
      case TOp::kSubF64:
        as.movsd_xm(Xmm::xmm0, Reg::rsp, xo);
        as.subsd_xm(Xmm::xmm0, Reg::rsp, yo);
        as.movsd_mx(Reg::rsp, xo, Xmm::xmm0);
        break;
      case TOp::kMulF64:
        as.movsd_xm(Xmm::xmm0, Reg::rsp, xo);
        as.mulsd_xm(Xmm::xmm0, Reg::rsp, yo);
        as.movsd_mx(Reg::rsp, xo, Xmm::xmm0);
        break;
      case TOp::kDivF64: {
        // y == 0.0 errors (both zeroes); NaN is not zero. ucomisd sets
        // ZF on equal *or* unordered, so route parity around the check.
        Label nonzero = as.NewLabel();
        as.movsd_xm(Xmm::xmm1, Reg::rsp, yo);
        as.xorpd_xx(Xmm::xmm2, Xmm::xmm2);
        as.ucomisd_xx(Xmm::xmm1, Xmm::xmm2);
        as.jcc(Cond::p, nonzero);
        as.jcc(Cond::e, err(native_err::kDivZero, 0));
        as.Bind(nonzero);
        as.movsd_xm(Xmm::xmm0, Reg::rsp, xo);
        as.divsd_xm(Xmm::xmm0, Reg::rsp, yo);
        as.movsd_mx(Reg::rsp, xo, Xmm::xmm0);
        break;
      }
      case TOp::kAndJumpFalse:
        // Pop v; if false, push false and jump. The popped byte is
        // already 0 on the taken path, so the "push" is a no-op in the
        // fixed-slot frame.
        as.movzx_rm8(Reg::rax, Reg::rsp, top);
        as.test_r8r8(Reg::rax, Reg::rax);
        as.jcc(Cond::e, targets.at(in.a));
        break;
      case TOp::kOrJumpTrue:
        as.movzx_rm8(Reg::rax, Reg::rsp, top);
        as.test_r8r8(Reg::rax, Reg::rax);
        as.jcc(Cond::ne, targets.at(in.a));
        break;
      default:
        return false;
    }
  }
  auto t = targets.find(static_cast<uint32_t>(n));
  if (t != targets.end()) as.Bind(t->second);
  return as.ok();
}

// ---------------------------------------------------------------------------
// Step-program emission (one native function per activity).
//
// Register plan (SysV):
//   rbx  NativeStepCtx*                r12b  any_true
//   r13  fresh_count                   r14   out_evals plane base
//   rax/rcx/rdx, xmm0-2 scratch; the frame holds the typed operand cells.
// Five callee-saved pushes put rsp ≡ 0 (mod 16) before the frame, and the
// frame is a multiple of 16, so the record-thunk call site is aligned.
// ---------------------------------------------------------------------------

constexpr int32_t kOffValues = 0;
constexpr int32_t kOffValuesSize = 8;
constexpr int32_t kOffOutEvals = 24;
constexpr int32_t kOffFresh = 32;
constexpr int32_t kOffFreshCount = 40;
constexpr int32_t kOffFlags = 48;
constexpr int32_t kOffStatConnectors = 56;
constexpr int32_t kOffStatVm = 64;
constexpr int32_t kOffStatTyped = 72;
constexpr int32_t kOffThunk = 80;

struct ErrStub {
  Label label;
  uint64_t code;
  Label resume;  ///< condition_error_is_false continuation (value = false)
};

/// One recorded connector: out_eval write, connectors_evaluated, the
/// fresh-list store, and the journal/audit thunk — the interpreter's
/// `record:` block instruction for instruction (the thunk covers the
/// journal append and audit event; a non-zero thunk return aborts the
/// sweep exactly like EXO_RETURN_NOT_OK(JournalAppend(...))).
/// On entry al holds the 0/1 value.
void EmitRecord(Assembler& as, uint32_t step_idx, uint32_t out_idx,
                uint32_t cidx, Label ret_label) {
  as.mov_mr8(Reg::r14, static_cast<int32_t>(out_idx), Reg::rax);
  as.mov_rm(Reg::rcx, Reg::rbx, kOffStatConnectors);
  as.inc_m64(Reg::rcx, 0);
  as.mov_rm(Reg::rdx, Reg::rbx, kOffFresh);
  as.mov_mi32_idx8(Reg::rdx, Reg::r13, 0, cidx);
  as.mov_mr8_idx8(Reg::rdx, Reg::r13, 4, Reg::rax);
  as.inc_r(Reg::r13);
  Label skip = as.NewLabel();
  as.test_mi8(Reg::rbx, kOffFlags, static_cast<uint8_t>(kFlagRecord));
  as.jcc(Cond::e, skip);
  as.mov_ri(Reg::rsi, step_idx);
  as.mov_rr(Reg::rdi, Reg::rbx);
  as.call_m(Reg::rbx, kOffThunk);
  as.test_rr(Reg::rax, Reg::rax);
  as.jcc(Cond::ne, ret_label);
  as.Bind(skip);
}

/// Lowers activity `aid`'s whole step program. Returns false (bailout)
/// when any instruction cannot be emitted; on success `code` holds the
/// finished function image and `min_slots_out` the layout floor its
/// embedded conditions assume.
bool CompileActivity(const wf::NavigationPlan& plan, uint32_t aid,
                     const ValueLayout& vl, std::vector<uint8_t>* code,
                     uint32_t* min_slots_out) {
  using Op = wf::StepInstr::Op;
  const wf::NavigationPlan::ActivityInfo& info = plan.activity(aid);
  const wf::StepInstr* steps = plan.step_program(info.step_base);

  // Vet every instruction before emitting anything.
  std::vector<const TypedAnalysis*> analyses;  // parallel to steps, kVm only
  std::map<uint32_t, TypedAnalysis> analysis_by_step;
  uint32_t n_steps = 0;
  int max_depth = 0;
  uint32_t min_slots = 0;
  for (uint32_t i = 0;; ++i) {
    const wf::StepInstr& in = steps[i];
    if (in.op == Op::kEnd) {
      n_steps = i;
      break;
    }
    switch (in.op) {
      case Op::kTrivial:
      case Op::kOtherwise:
        break;
      case Op::kVm: {
        if (in.prog < 0) return false;
        const CompiledCondition& prog = plan.vm_program(in.prog);
        if (!prog.typed() ||
            prog.typed_result() != data::ScalarType::kBool) {
          return false;
        }
        TypedAnalysis an = AnalyzeTyped(prog, vl);
        if (!an.ok) return false;
        if (an.max_depth > max_depth) max_depth = an.max_depth;
        if (prog.min_slots() > min_slots) min_slots = prog.min_slots();
        analysis_by_step.emplace(i, std::move(an));
        break;
      }
      case Op::kTree:
      default:
        return false;  // tree-walked conditions stay on the interpreter
    }
  }

  const int32_t frame = (8 * max_depth + 15) & ~15;

  Assembler as;
  as.push_r(Reg::rbp);
  as.push_r(Reg::rbx);
  as.push_r(Reg::r12);
  as.push_r(Reg::r13);
  as.push_r(Reg::r14);
  if (frame != 0) as.sub_ri(Reg::rsp, frame);
  as.mov_rr(Reg::rbx, Reg::rdi);
  as.xor_rr32(Reg::r12, Reg::r12);
  as.xor_rr32(Reg::r13, Reg::r13);
  as.mov_rm(Reg::r14, Reg::rbx, kOffOutEvals);

  Label ret_label = as.NewLabel();
  std::vector<ErrStub> stubs;

  for (uint32_t i = 0; i < n_steps; ++i) {
    const wf::StepInstr& in = steps[i];
    const int32_t out_idx = static_cast<int32_t>(in.out_idx);
    Label next = as.NewLabel();
    switch (in.op) {
      case Op::kTrivial: {
        Label fresh_eval = as.NewLabel();
        as.movzx_rm8(Reg::rax, Reg::r14, out_idx);
        as.test_r8r8(Reg::rax, Reg::rax);
        as.jcc(Cond::s, fresh_eval);      // prior < 0: evaluate
        as.or_r8r8(Reg::r12, Reg::rax);   // any_true |= prior != 0
        as.jmp(next);
        as.Bind(fresh_eval);
        as.test_mi8(Reg::rbx, kOffFlags, static_cast<uint8_t>(kFlagAllFalse));
        as.setcc(Cond::e, Reg::rax);      // value = !all_false
        as.or_r8r8(Reg::r12, Reg::rax);
        EmitRecord(as, i, in.out_idx, in.cidx, ret_label);
        break;
      }
      case Op::kVm: {
        Label fresh_eval = as.NewLabel();
        Label value_false = as.NewLabel();
        Label do_record = as.NewLabel();
        as.movzx_rm8(Reg::rax, Reg::r14, out_idx);
        as.test_r8r8(Reg::rax, Reg::rax);
        as.jcc(Cond::s, fresh_eval);
        as.or_r8r8(Reg::r12, Reg::rax);
        as.jmp(next);
        as.Bind(fresh_eval);
        as.test_mi8(Reg::rbx, kOffFlags, static_cast<uint8_t>(kFlagAllFalse));
        as.jcc(Cond::ne, value_false);    // dead-path sweep: false, no eval
        // EvalVmCondition's counters, bumped before the evaluation —
        // every native condition run is a vm run and a typed run.
        as.mov_rm(Reg::rax, Reg::rbx, kOffStatVm);
        as.inc_m64(Reg::rax, 0);
        as.mov_rm(Reg::rax, Reg::rbx, kOffStatTyped);
        as.inc_m64(Reg::rax, 0);
        const CompiledCondition& prog = plan.vm_program(in.prog);
        const TypedAnalysis& an = analysis_by_step.at(i);
        std::map<std::pair<uint64_t, uint32_t>, Label> local;
        ErrSink sink = [&](uint64_t kind, uint32_t aux) {
          auto key = std::make_pair(kind, aux);
          auto it = local.find(key);
          if (it != local.end()) return it->second;
          Label l = as.NewLabel();
          local.emplace(key, l);
          stubs.push_back(
              ErrStub{l, native_err::Make(kind, i, aux), value_false});
          return l;
        };
        if (!EmitTypedBody(as, prog, an, Reg::rbx, vl, sink)) return false;
        as.movzx_rm8(Reg::rax, Reg::rsp, 0);  // the boolean result cell
        as.or_r8r8(Reg::r12, Reg::rax);
        as.jmp(do_record);
        as.Bind(value_false);
        as.xor_rr32(Reg::rax, Reg::rax);
        as.Bind(do_record);
        EmitRecord(as, i, in.out_idx, in.cidx, ret_label);
        break;
      }
      case Op::kOtherwise: {
        Label do_record = as.NewLabel();
        as.movzx_rm8(Reg::rax, Reg::r14, out_idx);
        as.test_r8r8(Reg::rax, Reg::rax);
        as.jcc(Cond::ns, next);           // prior >= 0: skip, no any_true
        // value = all_false ? false : !any_true; does NOT feed any_true.
        as.xor_rr32(Reg::rax, Reg::rax);
        as.test_mi8(Reg::rbx, kOffFlags, static_cast<uint8_t>(kFlagAllFalse));
        as.jcc(Cond::ne, do_record);
        as.test_r8r8(Reg::r12, Reg::r12);
        as.setcc(Cond::e, Reg::rax);
        as.Bind(do_record);
        EmitRecord(as, i, in.out_idx, in.cidx, ret_label);
        break;
      }
      default:
        return false;
    }
    as.Bind(next);
  }

  // kEnd: success epilogue (also the error exit with rax pre-loaded).
  as.xor_rr32(Reg::rax, Reg::rax);
  as.Bind(ret_label);
  as.mov_mr(Reg::rbx, kOffFreshCount, Reg::r13);
  if (frame != 0) as.add_ri(Reg::rsp, frame);
  as.pop_r(Reg::r14);
  as.pop_r(Reg::r13);
  as.pop_r(Reg::r12);
  as.pop_r(Reg::rbx);
  as.pop_r(Reg::rbp);
  as.ret();

  for (const ErrStub& stub : stubs) {
    as.Bind(stub.label);
    as.test_mi8(Reg::rbx, kOffFlags, static_cast<uint8_t>(kFlagErrFalse));
    as.jcc(Cond::ne, stub.resume);  // condition_error_is_false: record false
    as.mov_ri(Reg::rax, stub.code);
    as.jmp(ret_label);
  }

  if (!as.Finalize() || !as.ok()) return false;
  *code = as.code();
  *min_slots_out = min_slots;
  return true;
}

}  // namespace

bool NativeCodegenAvailable() {
  static const bool available = [] {
    if (!GetValueLayout().ok) return false;
    // Smoke-test the whole W^X pipeline once: mov rax, 42; ret.
    auto arena = ExecArena::Build(64);
    if (!arena) return false;
    const std::vector<uint8_t> code = {0x48, 0xC7, 0xC0, 0x2A,
                                       0x00, 0x00, 0x00, 0xC3};
    const void* p = arena->Add(code);
    if (p == nullptr || !arena->Finalize()) return false;
    auto fn = reinterpret_cast<uint64_t (*)()>(
        reinterpret_cast<uintptr_t>(p));
    return fn() == 42;
  }();
  return available;
}

std::shared_ptr<const NativeStepUnit> CompileStepPrograms(
    const wf::NavigationPlan& plan) {
  if (!NativeCodegenAvailable()) return nullptr;
  const ValueLayout& vl = GetValueLayout();
  const uint32_t n = plan.activity_count();
  std::shared_ptr<NativeStepUnit> unit(new NativeStepUnit());
  unit->entries_.assign(n, nullptr);
  unit->min_slots_.assign(n, 0);

  std::vector<std::vector<uint8_t>> blobs(n);
  std::vector<bool> compiled(n, false);
  size_t total = 0;
  for (uint32_t aid = 0; aid < n; ++aid) {
    uint32_t min_slots = 0;
    if (CompileActivity(plan, aid, vl, &blobs[aid], &min_slots)) {
      compiled[aid] = true;
      unit->min_slots_[aid] = min_slots;
      total += blobs[aid].size() + 16;  // +16: entry alignment padding
    } else {
      ++unit->bailouts_;
    }
  }
  if (total == 0) return unit;  // every activity bailed; still reportable

  unit->arena_ = ExecArena::Build(total);
  if (!unit->arena_) return nullptr;
  std::vector<const void*> addrs(n, nullptr);
  for (uint32_t aid = 0; aid < n; ++aid) {
    if (!compiled[aid]) continue;
    addrs[aid] = unit->arena_->Add(blobs[aid]);
    if (addrs[aid] == nullptr) return nullptr;
  }
  if (!unit->arena_->Finalize()) return nullptr;
  for (uint32_t aid = 0; aid < n; ++aid) {
    if (!compiled[aid]) continue;
    unit->entries_[aid] = reinterpret_cast<NativeStepUnit::StepFn>(
        reinterpret_cast<uintptr_t>(addrs[aid]));
    ++unit->compiled_;
  }
  return unit;
}

std::unique_ptr<NativeCondition> NativeCondition::Compile(
    const expr::CompiledCondition& prog) {
  if (!NativeCodegenAvailable()) return nullptr;
  if (prog.code().empty() || !prog.typed()) return nullptr;
  const data::ScalarType rt = prog.typed_result();
  if (rt != data::ScalarType::kLong && rt != data::ScalarType::kFloat &&
      rt != data::ScalarType::kBool) {
    return nullptr;
  }
  const ValueLayout& vl = GetValueLayout();
  TypedAnalysis an = AnalyzeTyped(prog, vl);
  if (!an.ok) return nullptr;

  Assembler as;
  const int32_t frame = 8 * an.max_depth;  // leaf: no alignment constraint
  if (frame != 0) as.sub_ri(Reg::rsp, frame);
  Label ret_label = as.NewLabel();
  std::vector<std::pair<Label, uint64_t>> stubs;
  std::map<std::pair<uint64_t, uint32_t>, Label> dedup;
  ErrSink sink = [&](uint64_t kind, uint32_t aux) {
    auto key = std::make_pair(kind, aux);
    auto it = dedup.find(key);
    if (it != dedup.end()) return it->second;
    Label l = as.NewLabel();
    dedup.emplace(key, l);
    stubs.emplace_back(l, native_err::Make(kind, 0, aux));
    return l;
  };
  if (!EmitTypedBody(as, prog, an, Reg::rdi, vl, sink)) return nullptr;
  as.mov_rm(Reg::rcx, Reg::rsp, 0);
  as.mov_mr(Reg::rdi, 24, Reg::rcx);  // ctx->result
  as.xor_rr32(Reg::rax, Reg::rax);
  as.Bind(ret_label);
  if (frame != 0) as.add_ri(Reg::rsp, frame);
  as.ret();
  for (const auto& [label, errc] : stubs) {
    as.Bind(label);
    as.mov_ri(Reg::rax, errc);
    as.jmp(ret_label);
  }
  if (!as.Finalize() || !as.ok()) return nullptr;

  std::unique_ptr<NativeCondition> nc(new NativeCondition());
  nc->arena_ = ExecArena::Build(as.size() + 16);
  if (!nc->arena_) return nullptr;
  const void* p = nc->arena_->Add(as.code());
  if (p == nullptr || !nc->arena_->Finalize()) return nullptr;
  nc->fn_ = reinterpret_cast<CondFn>(reinterpret_cast<uintptr_t>(p));
  nc->result_type_ = rt;
  nc->names_ = prog.names();
  nc->source_ = prog.source();
  nc->bound_type_ = prog.bound_type();
  nc->min_slots_ = prog.min_slots();
  return nc;
}

#else  // !EXO_NATIVE_JIT

bool NativeCodegenAvailable() { return false; }

std::shared_ptr<const NativeStepUnit> CompileStepPrograms(
    const wf::NavigationPlan&) {
  return nullptr;
}

std::unique_ptr<NativeCondition> NativeCondition::Compile(
    const expr::CompiledCondition&) {
  return nullptr;
}

#endif  // EXO_NATIVE_JIT

// --- NativeCondition evaluation (layout-independent) -------------------------

Result<uint64_t> NativeCondition::Run(const data::Container& c) const {
  if (fn_ == nullptr) {
    return Status::Internal("native condition has no compiled function");
  }
  if (c.slot_count() < min_slots_) {
    // CompiledCondition::CheckReadable's exact message.
    return Status::Internal("compiled condition bound against container type " +
                            bound_type_ + " cannot read a container of type " +
                            c.type_name());
  }
  NativeCondCtx ctx;
  ctx.slot_values = c.slot_values_data();
  ctx.slot_values_size = c.slot_values_size();
  ctx.slot_defaults = c.slot_defaults_data();
  const uint64_t rc = fn_(&ctx);
  if (rc != native_err::kNone) {
    switch (native_err::Kind(rc)) {
      case native_err::kNullRead:
        return Status::FailedPrecondition(expr::internal::kUnsetDataPrefix +
                                          names_[native_err::Aux(rc)]);
      case native_err::kDivZero:
        return Status::InvalidArgument(expr::internal::kDivisionByZero);
      case native_err::kModZero:
        return Status::InvalidArgument(expr::internal::kModuloByZero);
      default:
        return Status::Internal("unknown native condition error code");
    }
  }
  return ctx.result;
}

Result<data::Value> NativeCondition::Evaluate(
    const data::Container& container) const {
  EXO_ASSIGN_OR_RETURN(uint64_t cell, Run(container));
  switch (result_type_) {
    case data::ScalarType::kLong:
      return data::Value(static_cast<int64_t>(cell));
    case data::ScalarType::kFloat: {
      double f;
      std::memcpy(&f, &cell, 8);
      return data::Value(f);
    }
    case data::ScalarType::kBool:
      return data::Value((cell & 0xFF) != 0);
    default:
      break;
  }
  return Status::Internal("typed condition program has no result type");
}

Result<bool> NativeCondition::EvaluateBool(
    const data::Container& container) const {
  if (result_type_ == data::ScalarType::kBool) {
    EXO_ASSIGN_OR_RETURN(uint64_t cell, Run(container));
    return (cell & 0xFF) != 0;
  }
  EXO_ASSIGN_OR_RETURN(data::Value v, Evaluate(container));
  if (!v.is_bool()) {
    return Status::InvalidArgument("condition did not evaluate to a boolean: " +
                                   source_ + " = " + v.ToString());
  }
  return v.as_bool();
}

}  // namespace exotica::codegen
