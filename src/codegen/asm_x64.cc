#include "codegen/asm_x64.h"

namespace exotica::codegen {

namespace {
constexpr int kRsp = 4;  // low-3-bits encodings that force a SIB byte
constexpr int kRbp = 5;  // ...and that force a displacement under mod 00
}  // namespace

void Assembler::Emit32(uint32_t v) {
  Emit8(static_cast<uint8_t>(v));
  Emit8(static_cast<uint8_t>(v >> 8));
  Emit8(static_cast<uint8_t>(v >> 16));
  Emit8(static_cast<uint8_t>(v >> 24));
}

void Assembler::Emit64(uint64_t v) {
  Emit32(static_cast<uint32_t>(v));
  Emit32(static_cast<uint32_t>(v >> 32));
}

void Assembler::EmitRex(bool w, int reg, int index, int base, bool force) {
  uint8_t rex = 0x40;
  if (w) rex |= 0x08;
  if (reg >= 8) rex |= 0x04;
  if (index >= 8) rex |= 0x02;
  if (base >= 8) rex |= 0x01;
  if (rex != 0x40 || force) Emit8(rex);
}

void Assembler::EmitRexForByteOp(int reg_field, int base_or_rm) {
  // spl/bpl/sil/dil are only addressable with a REX prefix (otherwise the
  // encodings mean ah/ch/dh/bh).
  const bool force = (reg_field >= 4 && reg_field <= 7) ||
                     (base_or_rm >= 4 && base_or_rm <= 7);
  EmitRex(false, reg_field, 0, base_or_rm, force);
}

void Assembler::EmitMem(int reg_field, Reg base, int32_t disp) {
  const int b = static_cast<int>(base) & 7;
  const bool need_sib = (b == kRsp);
  int mod;
  if (disp == 0 && b != kRbp) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  Emit8(static_cast<uint8_t>((mod << 6) | ((reg_field & 7) << 3) |
                             (need_sib ? 4 : b)));
  if (need_sib) Emit8(0x24);  // scale 1, no index, base rsp/r12
  if (mod == 1) {
    Emit8(static_cast<uint8_t>(disp));
  } else if (mod == 2) {
    Emit32(static_cast<uint32_t>(disp));
  }
}

void Assembler::EmitMemIdx8(int reg_field, Reg base, Reg index, int32_t disp) {
  if (index == Reg::rsp) {  // encoding 4 means "no index"
    ok_ = false;
    return;
  }
  const int b = static_cast<int>(base) & 7;
  int mod;
  if (disp == 0 && b != kRbp) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  Emit8(static_cast<uint8_t>((mod << 6) | ((reg_field & 7) << 3) | 4));
  Emit8(static_cast<uint8_t>((3 << 6) | ((static_cast<int>(index) & 7) << 3) |
                             b));
  if (mod == 1) {
    Emit8(static_cast<uint8_t>(disp));
  } else if (mod == 2) {
    Emit32(static_cast<uint32_t>(disp));
  }
}

Assembler::Label Assembler::NewLabel() {
  label_offsets_.push_back(-1);
  return Label{static_cast<uint32_t>(label_offsets_.size() - 1)};
}

void Assembler::Bind(Label l) {
  label_offsets_[l.id] = static_cast<int64_t>(code_.size());
}

// --- moves -------------------------------------------------------------------

void Assembler::mov_ri(Reg dst, uint64_t imm) {
  const int d = static_cast<int>(dst);
  if (imm <= 0xFFFFFFFFull) {
    // mov r32, imm32 zero-extends.
    EmitRex(false, 0, 0, d);
    Emit8(static_cast<uint8_t>(0xB8 + (d & 7)));
    Emit32(static_cast<uint32_t>(imm));
    return;
  }
  const int64_t s = static_cast<int64_t>(imm);
  if (s >= INT32_MIN && s <= INT32_MAX) {
    // mov r64, imm32 (sign-extended).
    EmitRex(true, 0, 0, d);
    Emit8(0xC7);
    Emit8(static_cast<uint8_t>(0xC0 | (d & 7)));
    Emit32(static_cast<uint32_t>(imm));
    return;
  }
  EmitRex(true, 0, 0, d);
  Emit8(static_cast<uint8_t>(0xB8 + (d & 7)));
  Emit64(imm);
}

void Assembler::mov_rr(Reg dst, Reg src) {
  EmitRex(true, static_cast<int>(src), 0, static_cast<int>(dst));
  Emit8(0x89);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(src) & 7) << 3) |
                             (static_cast<int>(dst) & 7)));
}

void Assembler::mov_rm(Reg dst, Reg base, int32_t disp) {
  EmitRex(true, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x8B);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::mov_mr(Reg base, int32_t disp, Reg src) {
  EmitRex(true, static_cast<int>(src), 0, static_cast<int>(base));
  Emit8(0x89);
  EmitMem(static_cast<int>(src), base, disp);
}

void Assembler::mov_mr8(Reg base, int32_t disp, Reg src) {
  const int s = static_cast<int>(src);
  EmitRex(false, s, 0, static_cast<int>(base), s >= 4 && s <= 7);
  Emit8(0x88);
  EmitMem(s, base, disp);
}

void Assembler::mov_mi8(Reg base, int32_t disp, uint8_t imm) {
  EmitRex(false, 0, 0, static_cast<int>(base));
  Emit8(0xC6);
  EmitMem(0, base, disp);
  Emit8(imm);
}

void Assembler::movzx_rm8(Reg dst, Reg base, int32_t disp) {
  EmitRex(false, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0xB6);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::mov_mi32_idx8(Reg base, Reg index, int32_t disp, uint32_t imm) {
  EmitRex(false, 0, static_cast<int>(index), static_cast<int>(base));
  Emit8(0xC7);
  EmitMemIdx8(0, base, index, disp);
  Emit32(imm);
}

void Assembler::mov_mr8_idx8(Reg base, Reg index, int32_t disp, Reg src) {
  const int s = static_cast<int>(src);
  EmitRex(false, s, static_cast<int>(index), static_cast<int>(base),
          s >= 4 && s <= 7);
  Emit8(0x88);
  EmitMemIdx8(s, base, index, disp);
}

// --- integer arithmetic / logic ----------------------------------------------

void Assembler::add_ri(Reg dst, int32_t imm) {
  EmitRex(true, 0, 0, static_cast<int>(dst));
  if (imm >= -128 && imm <= 127) {
    Emit8(0x83);
    Emit8(static_cast<uint8_t>(0xC0 | (static_cast<int>(dst) & 7)));
    Emit8(static_cast<uint8_t>(imm));
  } else {
    Emit8(0x81);
    Emit8(static_cast<uint8_t>(0xC0 | (static_cast<int>(dst) & 7)));
    Emit32(static_cast<uint32_t>(imm));
  }
}

void Assembler::sub_ri(Reg dst, int32_t imm) {
  EmitRex(true, 0, 0, static_cast<int>(dst));
  if (imm >= -128 && imm <= 127) {
    Emit8(0x83);
    Emit8(static_cast<uint8_t>(0xE8 | (static_cast<int>(dst) & 7)));
    Emit8(static_cast<uint8_t>(imm));
  } else {
    Emit8(0x81);
    Emit8(static_cast<uint8_t>(0xE8 | (static_cast<int>(dst) & 7)));
    Emit32(static_cast<uint32_t>(imm));
  }
}

void Assembler::add_rm(Reg dst, Reg base, int32_t disp) {
  EmitRex(true, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x03);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::sub_rm(Reg dst, Reg base, int32_t disp) {
  EmitRex(true, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x2B);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::imul_rm(Reg dst, Reg base, int32_t disp) {
  EmitRex(true, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0xAF);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::neg_m64(Reg base, int32_t disp) {
  EmitRex(true, 0, 0, static_cast<int>(base));
  Emit8(0xF7);
  EmitMem(3, base, disp);
}

void Assembler::inc_r(Reg r) {
  EmitRex(true, 0, 0, static_cast<int>(r));
  Emit8(0xFF);
  Emit8(static_cast<uint8_t>(0xC0 | (static_cast<int>(r) & 7)));
}

void Assembler::inc_m64(Reg base, int32_t disp) {
  EmitRex(true, 0, 0, static_cast<int>(base));
  Emit8(0xFF);
  EmitMem(0, base, disp);
}

void Assembler::xor_rr32(Reg dst, Reg src) {
  EmitRex(false, static_cast<int>(src), 0, static_cast<int>(dst));
  Emit8(0x31);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(src) & 7) << 3) |
                             (static_cast<int>(dst) & 7)));
}

void Assembler::xor_mr64(Reg base, int32_t disp, Reg src) {
  EmitRex(true, static_cast<int>(src), 0, static_cast<int>(base));
  Emit8(0x31);
  EmitMem(static_cast<int>(src), base, disp);
}

void Assembler::xor_mi8(Reg base, int32_t disp, uint8_t imm) {
  EmitRex(false, 0, 0, static_cast<int>(base));
  Emit8(0x80);
  EmitMem(6, base, disp);
  Emit8(imm);
}

void Assembler::or_r8r8(Reg dst, Reg src) {
  EmitRexForByteOp(static_cast<int>(src), static_cast<int>(dst));
  Emit8(0x08);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(src) & 7) << 3) |
                             (static_cast<int>(dst) & 7)));
}

void Assembler::and_r8r8(Reg dst, Reg src) {
  EmitRexForByteOp(static_cast<int>(src), static_cast<int>(dst));
  Emit8(0x20);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(src) & 7) << 3) |
                             (static_cast<int>(dst) & 7)));
}

void Assembler::test_r8r8(Reg a, Reg b) {
  EmitRexForByteOp(static_cast<int>(b), static_cast<int>(a));
  Emit8(0x84);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(b) & 7) << 3) |
                             (static_cast<int>(a) & 7)));
}

void Assembler::test_mi8(Reg base, int32_t disp, uint8_t imm) {
  EmitRex(false, 0, 0, static_cast<int>(base));
  Emit8(0xF6);
  EmitMem(0, base, disp);
  Emit8(imm);
}

void Assembler::test_rr(Reg a, Reg b) {
  EmitRex(true, static_cast<int>(b), 0, static_cast<int>(a));
  Emit8(0x85);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(b) & 7) << 3) |
                             (static_cast<int>(a) & 7)));
}

void Assembler::cmp_r8r8(Reg a, Reg b) {
  EmitRexForByteOp(static_cast<int>(b), static_cast<int>(a));
  Emit8(0x38);  // cmp r/m8, r8 computes a - b
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(b) & 7) << 3) |
                             (static_cast<int>(a) & 7)));
}

void Assembler::cmp_mi8(Reg base, int32_t disp, uint8_t imm) {
  EmitRex(false, 0, 0, static_cast<int>(base));
  Emit8(0x80);
  EmitMem(7, base, disp);
  Emit8(imm);
}

void Assembler::cmp_mi32(Reg base, int32_t disp, int32_t imm) {
  EmitRex(true, 0, 0, static_cast<int>(base));
  Emit8(0x81);
  EmitMem(7, base, disp);
  Emit32(static_cast<uint32_t>(imm));
}

void Assembler::cqo() {
  Emit8(0x48);
  Emit8(0x99);
}

void Assembler::idiv_r(Reg divisor) {
  EmitRex(true, 0, 0, static_cast<int>(divisor));
  Emit8(0xF7);
  Emit8(static_cast<uint8_t>(0xF8 | (static_cast<int>(divisor) & 7)));
}

// --- flags → values, branches ------------------------------------------------

void Assembler::setcc(Cond cc, Reg dst8) {
  EmitRexForByteOp(0, static_cast<int>(dst8));
  Emit8(0x0F);
  Emit8(static_cast<uint8_t>(0x90 | static_cast<uint8_t>(cc)));
  Emit8(static_cast<uint8_t>(0xC0 | (static_cast<int>(dst8) & 7)));
}

void Assembler::jcc(Cond cc, Label target) {
  Emit8(0x0F);
  Emit8(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(cc)));
  fixups_.push_back(Fixup{code_.size(), target.id});
  Emit32(0);
}

void Assembler::jmp(Label target) {
  Emit8(0xE9);
  fixups_.push_back(Fixup{code_.size(), target.id});
  Emit32(0);
}

void Assembler::call_m(Reg base, int32_t disp) {
  EmitRex(false, 0, 0, static_cast<int>(base));
  Emit8(0xFF);
  EmitMem(2, base, disp);
}

void Assembler::ret() { Emit8(0xC3); }

void Assembler::push_r(Reg r) {
  EmitRex(false, 0, 0, static_cast<int>(r));
  Emit8(static_cast<uint8_t>(0x50 + (static_cast<int>(r) & 7)));
}

void Assembler::pop_r(Reg r) {
  EmitRex(false, 0, 0, static_cast<int>(r));
  Emit8(static_cast<uint8_t>(0x58 + (static_cast<int>(r) & 7)));
}

// --- SSE2 scalar double ------------------------------------------------------

void Assembler::movsd_xm(Xmm dst, Reg base, int32_t disp) {
  Emit8(0xF2);
  EmitRex(false, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0x10);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::movsd_mx(Reg base, int32_t disp, Xmm src) {
  Emit8(0xF2);
  EmitRex(false, static_cast<int>(src), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0x11);
  EmitMem(static_cast<int>(src), base, disp);
}

void Assembler::movq_xr(Xmm dst, Reg src) {
  Emit8(0x66);
  EmitRex(true, static_cast<int>(dst), 0, static_cast<int>(src));
  Emit8(0x0F);
  Emit8(0x6E);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(dst) & 7) << 3) |
                             (static_cast<int>(src) & 7)));
}

void Assembler::cvtsi2sd_xm(Xmm dst, Reg base, int32_t disp) {
  Emit8(0xF2);
  EmitRex(true, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0x2A);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::ucomisd_xx(Xmm a, Xmm b) {
  Emit8(0x66);
  EmitRex(false, static_cast<int>(a), 0, static_cast<int>(b));
  Emit8(0x0F);
  Emit8(0x2E);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(a) & 7) << 3) |
                             (static_cast<int>(b) & 7)));
}

namespace {
}  // namespace

void Assembler::addsd_xm(Xmm dst, Reg base, int32_t disp) {
  Emit8(0xF2);
  EmitRex(false, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0x58);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::subsd_xm(Xmm dst, Reg base, int32_t disp) {
  Emit8(0xF2);
  EmitRex(false, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0x5C);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::mulsd_xm(Xmm dst, Reg base, int32_t disp) {
  Emit8(0xF2);
  EmitRex(false, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0x59);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::divsd_xm(Xmm dst, Reg base, int32_t disp) {
  Emit8(0xF2);
  EmitRex(false, static_cast<int>(dst), 0, static_cast<int>(base));
  Emit8(0x0F);
  Emit8(0x5E);
  EmitMem(static_cast<int>(dst), base, disp);
}

void Assembler::xorpd_xx(Xmm dst, Xmm src) {
  Emit8(0x66);
  EmitRex(false, static_cast<int>(dst), 0, static_cast<int>(src));
  Emit8(0x0F);
  Emit8(0x57);
  Emit8(static_cast<uint8_t>(0xC0 | ((static_cast<int>(dst) & 7) << 3) |
                             (static_cast<int>(src) & 7)));
}

bool Assembler::Finalize() {
  if (finalized_) {
    ok_ = false;
    return false;
  }
  finalized_ = true;
  for (const Fixup& f : fixups_) {
    const int64_t target = label_offsets_[f.label];
    if (target < 0) {
      ok_ = false;
      return false;
    }
    const int64_t rel = target - static_cast<int64_t>(f.pos + 4);
    if (rel < INT32_MIN || rel > INT32_MAX) {
      ok_ = false;
      return false;
    }
    const uint32_t v = static_cast<uint32_t>(static_cast<int32_t>(rel));
    code_[f.pos] = static_cast<uint8_t>(v);
    code_[f.pos + 1] = static_cast<uint8_t>(v >> 8);
    code_[f.pos + 2] = static_cast<uint8_t>(v >> 16);
    code_[f.pos + 3] = static_cast<uint8_t>(v >> 24);
  }
  return ok_;
}

}  // namespace exotica::codegen
