// A small from-scratch x86-64 assembler: exactly the instruction subset
// the native step-program emitter needs, nothing more.
//
// The compilation ladder's last rung (docs/specs/native_codegen.md)
// lowers fused wf::StepInstr programs and their embedded typed condition
// programs to straight-line machine code. The programs are tiny (tens of
// instructions), branch only forward, and call out through one function
// pointer, so the assembler stays deliberately primitive: a byte buffer,
// REX/ModRM/SIB encoding for register and [base+disp] / [base+index*8+disp]
// operands, rel32 branches with label fixups patched at Finalize(), and
// the SSE2 scalar-double forms the condition semantics require (ucomisd,
// cvtsi2sd, the arithmetic -sd family). No section handling, no
// relocations, no instruction scheduling: emitted code is position-
// independent by construction (all branches are relative, all data lives
// behind the context register or in immediates).
//
// Condition-code naming and operand order follow Intel syntax: mov_rm is
// "mov reg, [mem]", mov_mr is "mov [mem], reg".

#ifndef EXOTICA_CODEGEN_ASM_X64_H_
#define EXOTICA_CODEGEN_ASM_X64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace exotica::codegen {

/// \brief General-purpose registers, numbered as the hardware encodes them.
enum class Reg : uint8_t {
  rax = 0, rcx = 1, rdx = 2, rbx = 3, rsp = 4, rbp = 5, rsi = 6, rdi = 7,
  r8 = 8, r9 = 9, r10 = 10, r11 = 11, r12 = 12, r13 = 13, r14 = 14, r15 = 15,
};

/// \brief SSE registers.
enum class Xmm : uint8_t {
  xmm0 = 0, xmm1 = 1, xmm2 = 2, xmm3 = 3, xmm4 = 4, xmm5 = 5,
};

/// \brief Condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
enum class Cond : uint8_t {
  o = 0x0, no = 0x1, b = 0x2, ae = 0x3, e = 0x4, ne = 0x5, be = 0x6, a = 0x7,
  s = 0x8, ns = 0x9, p = 0xA, np = 0xB, l = 0xC, ge = 0xD, le = 0xE, g = 0xF,
};

/// \brief Emits machine code into an internal byte buffer.
///
/// Labels: NewLabel() mints one, Bind() pins it to the current offset,
/// jcc()/jmp() reference it (forward or backward). Finalize() patches all
/// rel32 fixups and must be called exactly once, after which code() is the
/// finished function image. ok() goes false on misuse (unbound label,
/// displacement overflow) instead of asserting, so callers can bail out of
/// native compilation gracefully.
class Assembler {
 public:
  struct Label {
    uint32_t id = 0;
  };

  Label NewLabel();
  void Bind(Label l);

  // --- moves ---------------------------------------------------------------
  void mov_ri(Reg dst, uint64_t imm);               ///< best-form mov reg, imm
  void mov_rr(Reg dst, Reg src);                    ///< mov r64, r64
  void mov_rm(Reg dst, Reg base, int32_t disp);     ///< mov r64, [base+disp]
  void mov_mr(Reg base, int32_t disp, Reg src);     ///< mov [base+disp], r64
  void mov_mr8(Reg base, int32_t disp, Reg src);    ///< mov [base+disp], r8
  void mov_mi8(Reg base, int32_t disp, uint8_t imm);
  void movzx_rm8(Reg dst, Reg base, int32_t disp);  ///< movzx r32, byte [..]
  /// mov dword [base + index*8 + disp], imm32
  void mov_mi32_idx8(Reg base, Reg index, int32_t disp, uint32_t imm);
  /// mov byte [base + index*8 + disp], r8
  void mov_mr8_idx8(Reg base, Reg index, int32_t disp, Reg src);

  // --- integer arithmetic / logic ------------------------------------------
  void add_ri(Reg dst, int32_t imm);
  void sub_ri(Reg dst, int32_t imm);
  void add_rm(Reg dst, Reg base, int32_t disp);   ///< add r64, [base+disp]
  void sub_rm(Reg dst, Reg base, int32_t disp);
  void imul_rm(Reg dst, Reg base, int32_t disp);  ///< imul r64, [base+disp]
  void neg_m64(Reg base, int32_t disp);
  void inc_r(Reg r);
  void inc_m64(Reg base, int32_t disp);           ///< inc qword [base+disp]
  void xor_rr32(Reg dst, Reg src);                ///< xor r32, r32 (zeroing)
  void xor_mr64(Reg base, int32_t disp, Reg src); ///< xor [base+disp], r64
  void xor_mi8(Reg base, int32_t disp, uint8_t imm);
  void or_r8r8(Reg dst, Reg src);                 ///< or r8, r8
  void and_r8r8(Reg dst, Reg src);
  void test_r8r8(Reg a, Reg b);
  void test_mi8(Reg base, int32_t disp, uint8_t imm);
  void test_rr(Reg a, Reg b);                     ///< test r64, r64
  void cmp_r8r8(Reg a, Reg b);
  void cmp_mi8(Reg base, int32_t disp, uint8_t imm);
  void cmp_mi32(Reg base, int32_t disp, int32_t imm);  ///< cmp qword [..], imm32
  void cqo();
  void idiv_r(Reg divisor);

  // --- flags → values, branches --------------------------------------------
  void setcc(Cond cc, Reg dst8);
  void jcc(Cond cc, Label target);
  void jmp(Label target);
  void call_m(Reg base, int32_t disp);  ///< call qword [base+disp]
  void ret();
  void push_r(Reg r);
  void pop_r(Reg r);

  // --- SSE2 scalar double --------------------------------------------------
  void movsd_xm(Xmm dst, Reg base, int32_t disp);   ///< movsd xmm, [..]
  void movsd_mx(Reg base, int32_t disp, Xmm src);   ///< movsd [..], xmm
  void movq_xr(Xmm dst, Reg src);
  void cvtsi2sd_xm(Xmm dst, Reg base, int32_t disp);  ///< from qword [..]
  void ucomisd_xx(Xmm a, Xmm b);
  void addsd_xm(Xmm dst, Reg base, int32_t disp);
  void subsd_xm(Xmm dst, Reg base, int32_t disp);
  void mulsd_xm(Xmm dst, Reg base, int32_t disp);
  void divsd_xm(Xmm dst, Reg base, int32_t disp);
  void xorpd_xx(Xmm dst, Xmm src);

  /// Patches every label fixup. Must be called once, before code().
  /// Returns false (and poisons ok()) if any referenced label is unbound.
  bool Finalize();

  /// True while no encoding/fixup error has occurred.
  bool ok() const { return ok_; }

  size_t size() const { return code_.size(); }
  const std::vector<uint8_t>& code() const { return code_; }

 private:
  void Emit8(uint8_t b) { code_.push_back(b); }
  void Emit32(uint32_t v);
  void Emit64(uint64_t v);

  /// REX prefix for (reg_field, index, base); emitted when any extension
  /// bit or W is set, or when `force` (8-bit ops touching spl..dil).
  void EmitRex(bool w, int reg, int index, int base, bool force = false);

  /// ModRM (+SIB) + displacement for reg_field, [base + disp].
  void EmitMem(int reg_field, Reg base, int32_t disp);
  /// ModRM + SIB + displacement for reg_field, [base + index*8 + disp].
  void EmitMemIdx8(int reg_field, Reg base, Reg index, int32_t disp);

  /// Shared encoder for the 8-bit-operand forms.
  void EmitRexForByteOp(int reg_field, int base_or_rm);

  struct Fixup {
    size_t pos;     ///< offset of the rel32 placeholder
    uint32_t label;
  };

  std::vector<uint8_t> code_;
  std::vector<int64_t> label_offsets_;  ///< -1 = unbound
  std::vector<Fixup> fixups_;
  bool ok_ = true;
  bool finalized_ = false;
};

}  // namespace exotica::codegen

#endif  // EXOTICA_CODEGEN_ASM_X64_H_
