// ExecArena: a W^X executable-memory slab for JIT-compiled step programs.
//
// Lifecycle is strictly two-phase: the arena is mmap'd read-write, code is
// copied in with Add(), then Finalize() flips the whole slab to read-execute
// with mprotect. The mapping is never writable and executable at the same
// time, so the arena is safe under strict W^X policies; platforms that deny
// even the RW→RX transition (or that aren't unix at all) make Build() or
// Finalize() fail, which callers treat as "native codegen unavailable" and
// fall back to the threaded-code interpreter.
//
// One arena backs all native functions of one wf::NavigationPlan, so code
// lifetime tracks the plan that owns the programs the code was compiled
// from: when the plan's shared_ptr<NativeStepUnit> dies, the slab unmaps.

#ifndef EXOTICA_CODEGEN_EXEC_ARENA_H_
#define EXOTICA_CODEGEN_EXEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace exotica::codegen {

/// \brief A single mmap'd slab that starts RW, accepts code blobs, and is
/// sealed RX exactly once.
class ExecArena {
 public:
  /// Maps a RW slab of at least `capacity` bytes (rounded up to the page
  /// size). Returns nullptr when mapping fails or the platform has no
  /// executable-memory support compiled in.
  static std::unique_ptr<ExecArena> Build(size_t capacity);

  ~ExecArena();

  ExecArena(const ExecArena&) = delete;
  ExecArena& operator=(const ExecArena&) = delete;

  /// Copies `code` into the slab and returns the (not yet executable)
  /// address, or nullptr when the slab is full or already sealed.
  const void* Add(const std::vector<uint8_t>& code);

  /// Seals the slab read-execute. Returns false when mprotect is refused
  /// (strict W^X-denying environments); the arena is then unusable and
  /// callers must discard every pointer Add() handed out.
  bool Finalize();

  bool finalized() const { return finalized_; }
  size_t used() const { return used_; }
  size_t capacity() const { return capacity_; }

 private:
  ExecArena(uint8_t* base, size_t capacity)
      : base_(base), capacity_(capacity) {}

  uint8_t* base_ = nullptr;
  size_t capacity_ = 0;
  size_t used_ = 0;
  bool finalized_ = false;
};

}  // namespace exotica::codegen

#endif  // EXOTICA_CODEGEN_EXEC_ARENA_H_
