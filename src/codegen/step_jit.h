// Native x86-64 code generation for fused step programs — the last rung
// of the compilation ladder (tree-walk → generic VM → typed VM → fused
// threaded-code step programs → native code).
//
// CompileStepPrograms lowers each activity's wf::StepInstr program — and
// the typed expr::CompiledCondition programs its kVm steps embed — into
// one straight-line native function per activity, emitted with the
// in-tree assembler (asm_x64.h) into a W^X ExecArena whose lifetime
// tracks the owning NavigationPlan. The generated code replicates
// Engine::RunStepProgram's observable behaviour exactly: connector
// evaluation order, the out_evals/fresh bookkeeping, stats counters, and
// — through a single C++ record thunk — journal records and audit events
// byte for byte. Typed condition bodies are a transcription of
// CompiledCondition::RunTyped with the operand stack laid out as fixed
// frame slots (the stack depth at every pc is statically known), long
// comparisons widening through cvtsi2sd exactly like
// expr::internal::CompareDouble, and ucomisd sequences chosen so NaN
// orders identically to the kernels (docs/specs/native_codegen.md spells
// out each lowering).
//
// Bailout is per activity and total-by-default: any step the emitter
// cannot lower (kTree instructions, conditions without a typed boolean
// program, operand-depth inconsistencies) leaves that activity on the
// threaded-code interpreter and counts a bailout; platforms without
// x86-64, without executable memory, with an unrecognized data::Value
// layout, or built with EXOTICA_NATIVE_CODEGEN=OFF compile nothing at
// all and CompileStepPrograms returns null. Every caller must treat null
// entries as "run the interpreter".

#ifndef EXOTICA_CODEGEN_STEP_JIT_H_
#define EXOTICA_CODEGEN_STEP_JIT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/container.h"
#include "data/value.h"
#include "expr/vm.h"

namespace exotica::wf {
class NavigationPlan;
}  // namespace exotica::wf

namespace exotica::codegen {

class ExecArena;

/// \brief One fresh connector evaluation recorded by a native sweep
/// (the native image of the interpreter's fresh.emplace_back(cidx, value)).
/// POD with a fixed 8-byte stride: the generated code stores through
/// [fresh + i*8].
struct FreshSignal {
  uint32_t cidx = 0;   ///< control connector index
  uint8_t value = 0;   ///< 0 / 1
};
static_assert(sizeof(FreshSignal) == 8, "native code assumes an 8-byte stride");
static_assert(offsetof(FreshSignal, cidx) == 0);
static_assert(offsetof(FreshSignal, value) == 4);

/// \brief Calling context of a native step function. The generated code
/// addresses these fields by fixed byte offset (static_asserted below),
/// so the struct is a frozen ABI between the emitter and the engine
/// wrapper — append only.
struct NativeStepCtx {
  /// Activity-output slot storage: the container's lazily allocated value
  /// vector (may be null when nothing was written), its size, and the
  /// layout's defaults. The first three fields deliberately mirror
  /// NativeCondCtx so one condition-body emitter serves both entry kinds.
  const data::Value* slot_values = nullptr;  // offset 0
  uint64_t slot_values_size = 0;             // offset 8
  const data::Value* slot_defaults = nullptr;  // offset 16

  /// Base of the instance's out_evals plane (absolute StepInstr::out_idx
  /// slots; -1 unevaluated, 0/1 evaluated).
  int8_t* out_evals = nullptr;  // offset 24

  /// Fresh-evaluation output buffer, capacity >= the activity's step
  /// count; the function stores fresh_count entries.
  FreshSignal* fresh = nullptr;  // offset 32
  uint64_t fresh_count = 0;      // offset 40

  uint64_t flags = 0;  // offset 48 (kFlag* below)

  /// Stats counters bumped natively, exactly where the interpreter bumps
  /// them: connectors_evaluated per recorded connector, vm/typed per
  /// condition actually evaluated.
  uint64_t* stat_connectors = nullptr;  // offset 56
  uint64_t* stat_vm = nullptr;          // offset 64
  uint64_t* stat_typed = nullptr;       // offset 72

  /// Journal + audit emission for one recorded connector, in the
  /// interpreter's exact order. The thunk reads the just-stored value back
  /// from out_evals[steps[step_idx].out_idx]. Returns 0, or a native_err
  /// code whose Status the thunk has stashed engine-side. Called only when
  /// kFlagRecord is set.
  uint64_t (*record_thunk)(NativeStepCtx* ctx,
                           uint32_t step_idx) = nullptr;  // offset 80

  void* engine = nullptr;  // offset 88: the wfrt::Engine, for the thunk
  void* inst = nullptr;    // offset 96: the ProcessInstance, for the thunk
  /// The activity's StepInstr array (the thunk maps step_idx → connector).
  const void* steps = nullptr;  // offset 104
};

static_assert(offsetof(NativeStepCtx, slot_values) == 0);
static_assert(offsetof(NativeStepCtx, slot_values_size) == 8);
static_assert(offsetof(NativeStepCtx, slot_defaults) == 16);
static_assert(offsetof(NativeStepCtx, out_evals) == 24);
static_assert(offsetof(NativeStepCtx, fresh) == 32);
static_assert(offsetof(NativeStepCtx, fresh_count) == 40);
static_assert(offsetof(NativeStepCtx, flags) == 48);
static_assert(offsetof(NativeStepCtx, stat_connectors) == 56);
static_assert(offsetof(NativeStepCtx, stat_vm) == 64);
static_assert(offsetof(NativeStepCtx, stat_typed) == 72);
static_assert(offsetof(NativeStepCtx, record_thunk) == 80);
static_assert(offsetof(NativeStepCtx, engine) == 88);
static_assert(offsetof(NativeStepCtx, inst) == 96);
static_assert(offsetof(NativeStepCtx, steps) == 104);

/// NativeStepCtx::flags bits.
inline constexpr uint64_t kFlagAllFalse = 1;  ///< dead-path sweep
inline constexpr uint64_t kFlagRecord = 2;    ///< journal or audit attached
/// EngineOptions::condition_error_is_false: condition errors evaluate the
/// connector false instead of aborting the sweep.
inline constexpr uint64_t kFlagErrFalse = 4;

/// \brief Calling context of a standalone native condition function
/// (NativeCondition below; mainly the differential test). Field layout of
/// the first three members matches NativeStepCtx by design.
struct NativeCondCtx {
  const data::Value* slot_values = nullptr;    // offset 0
  uint64_t slot_values_size = 0;               // offset 8
  const data::Value* slot_defaults = nullptr;  // offset 16
  /// Raw 8-byte result cell (expr::CompiledCondition::TCell image); the
  /// statically known result type says which bytes mean what.
  uint64_t result = 0;  // offset 24
};
static_assert(offsetof(NativeCondCtx, slot_values) == 0);
static_assert(offsetof(NativeCondCtx, slot_values_size) == 8);
static_assert(offsetof(NativeCondCtx, slot_defaults) == 16);
static_assert(offsetof(NativeCondCtx, result) == 24);

/// \brief Error codes returned in rax by native functions. 0 is success;
/// otherwise the low byte is the kind, bits 8..31 the step index (step
/// functions) and bits 32..63 an auxiliary operand (the identifier-name
/// index for null reads).
namespace native_err {
inline constexpr uint64_t kNone = 0;
inline constexpr uint64_t kNullRead = 1;   ///< aux = name index
inline constexpr uint64_t kDivZero = 2;
inline constexpr uint64_t kModZero = 3;
inline constexpr uint64_t kRecordFailed = 4;  ///< thunk stashed the Status

inline uint64_t Make(uint64_t kind, uint32_t step_idx, uint32_t aux) {
  return kind | (static_cast<uint64_t>(step_idx & 0xFFFFFF) << 8) |
         (static_cast<uint64_t>(aux) << 32);
}
inline uint32_t Kind(uint64_t code) { return static_cast<uint32_t>(code & 0xFF); }
inline uint32_t StepIndex(uint64_t code) {
  return static_cast<uint32_t>((code >> 8) & 0xFFFFFF);
}
inline uint32_t Aux(uint64_t code) {
  return static_cast<uint32_t>(code >> 32);
}
}  // namespace native_err

/// \brief The native functions of one NavigationPlan: one entry per
/// activity (null where the emitter bailed out), backed by one sealed
/// ExecArena. Immutable after CompileStepPrograms; shared by every engine
/// navigating the plan.
class NativeStepUnit {
 public:
  using StepFn = uint64_t (*)(NativeStepCtx*);

  ~NativeStepUnit();
  NativeStepUnit(const NativeStepUnit&) = delete;
  NativeStepUnit& operator=(const NativeStepUnit&) = delete;

  /// Native entry for activity `aid`, or null (interpreter fallback).
  StepFn entry(uint32_t aid) const { return entries_[aid]; }

  /// Minimum container slot count the activity's conditions were compiled
  /// against (max over its kVm programs; 0 when unconditioned). Callers
  /// must fall back to the interpreter for smaller containers, which then
  /// raises CompiledCondition's exact layout error.
  uint32_t min_slots(uint32_t aid) const { return min_slots_[aid]; }

  uint32_t activity_count() const {
    return static_cast<uint32_t>(entries_.size());
  }
  /// Activities successfully lowered / left to the interpreter.
  uint32_t programs_compiled() const { return compiled_; }
  uint32_t bailouts() const { return bailouts_; }
  /// Finished machine-code bytes in the arena.
  size_t code_bytes() const;

 private:
  friend std::shared_ptr<const NativeStepUnit> CompileStepPrograms(
      const wf::NavigationPlan& plan);

  NativeStepUnit();

  std::unique_ptr<ExecArena> arena_;
  std::vector<StepFn> entries_;
  std::vector<uint32_t> min_slots_;
  uint32_t compiled_ = 0;
  uint32_t bailouts_ = 0;
};

/// True when this build can emit and run native code at all (x86-64, an
/// executable-memory arena, a recognized data::Value layout, and
/// EXOTICA_NATIVE_CODEGEN compiled in).
bool NativeCodegenAvailable();

/// Compiles every activity step program of `plan` that the emitter can
/// lower. Returns null when native codegen is unavailable or executable
/// memory was refused — callers fall back wholesale; per-activity
/// bailouts are reported through the unit.
std::shared_ptr<const NativeStepUnit> CompileStepPrograms(
    const wf::NavigationPlan& plan);

/// \brief A single typed condition program compiled to native code —
/// the differential test's fourth arm, mirroring
/// expr::CompiledCondition::Evaluate / EvaluateBool (same values, same
/// Status messages) for every expression whose typed program the emitter
/// supports.
class NativeCondition {
 public:
  /// Null when `prog` has no typed program, uses an unsupported op, or
  /// native codegen is unavailable.
  static std::unique_ptr<NativeCondition> Compile(
      const expr::CompiledCondition& prog);

  ~NativeCondition();
  NativeCondition(const NativeCondition&) = delete;
  NativeCondition& operator=(const NativeCondition&) = delete;

  Result<data::Value> Evaluate(const data::Container& container) const;
  Result<bool> EvaluateBool(const data::Container& container) const;

 private:
  NativeCondition() = default;

  Result<uint64_t> Run(const data::Container& container) const;

  using CondFn = uint64_t (*)(NativeCondCtx*);

  std::unique_ptr<ExecArena> arena_;
  CondFn fn_ = nullptr;
  data::ScalarType result_type_ = data::ScalarType::kNull;
  std::vector<std::string> names_;  ///< null-read error identifiers
  std::string source_;
  std::string bound_type_;
  uint32_t min_slots_ = 0;
};

}  // namespace exotica::codegen

#endif  // EXOTICA_CODEGEN_STEP_JIT_H_
