#include "codegen/exec_arena.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define EXOTICA_EXEC_ARENA_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define EXOTICA_EXEC_ARENA_MMAP 0
#endif

namespace exotica::codegen {

#if EXOTICA_EXEC_ARENA_MMAP

namespace {
size_t PageRound(size_t n) {
  const long page = sysconf(_SC_PAGESIZE);
  const size_t p = page > 0 ? static_cast<size_t>(page) : 4096;
  return ((n + p - 1) / p) * p;
}
}  // namespace

std::unique_ptr<ExecArena> ExecArena::Build(size_t capacity) {
  if (capacity == 0) capacity = 1;
  const size_t bytes = PageRound(capacity);
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) return nullptr;
  return std::unique_ptr<ExecArena>(
      new ExecArena(static_cast<uint8_t*>(base), bytes));
}

ExecArena::~ExecArena() {
  if (base_ != nullptr) ::munmap(base_, capacity_);
}

const void* ExecArena::Add(const std::vector<uint8_t>& code) {
  if (finalized_ || base_ == nullptr) return nullptr;
  // Keep every entry point 16-byte aligned.
  const size_t at = (used_ + 15) & ~size_t{15};
  if (at + code.size() > capacity_) return nullptr;
  std::memcpy(base_ + at, code.data(), code.size());
  used_ = at + code.size();
  return base_ + at;
}

bool ExecArena::Finalize() {
  if (finalized_ || base_ == nullptr) return false;
  if (::mprotect(base_, capacity_, PROT_READ | PROT_EXEC) != 0) {
    // Strict W^X environment refused the flip: unmap eagerly so no caller
    // can execute (or keep writing) the stale RW slab.
    ::munmap(base_, capacity_);
    base_ = nullptr;
    return false;
  }
  finalized_ = true;
  return true;
}

#else  // !EXOTICA_EXEC_ARENA_MMAP

std::unique_ptr<ExecArena> ExecArena::Build(size_t) { return nullptr; }
ExecArena::~ExecArena() = default;
const void* ExecArena::Add(const std::vector<uint8_t>&) { return nullptr; }
bool ExecArena::Finalize() { return false; }

#endif  // EXOTICA_EXEC_ARENA_MMAP

}  // namespace exotica::codegen
