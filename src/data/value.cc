#include "data/value.h"

#include <cstdlib>

#include "common/strings.h"

namespace exotica::data {

const char* ScalarTypeName(ScalarType t) {
  switch (t) {
    case ScalarType::kNull: return "NULL";
    case ScalarType::kLong: return "LONG";
    case ScalarType::kFloat: return "FLOAT";
    case ScalarType::kString: return "STRING";
    case ScalarType::kBool: return "BOOLEAN";
  }
  return "?";
}

Result<ScalarType> ScalarTypeFromName(const std::string& name) {
  std::string up = ToUpper(name);
  if (up == "LONG" || up == "INTEGER") return ScalarType::kLong;
  if (up == "FLOAT" || up == "DOUBLE") return ScalarType::kFloat;
  if (up == "STRING") return ScalarType::kString;
  if (up == "BOOLEAN" || up == "BOOL") return ScalarType::kBool;
  return Status::NotFound("unknown scalar type name: " + name);
}

Result<double> Value::ToDouble() const {
  if (is_long()) return static_cast<double>(as_long());
  if (is_float()) return as_float();
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

std::string Value::ToString() const {
  switch (type()) {
    case ScalarType::kNull: return "NULL";
    case ScalarType::kLong: return std::to_string(as_long());
    case ScalarType::kFloat: {
      std::string s = StrFormat("%.17g", as_float());
      // Keep floats visually distinct from longs for round-tripping.
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ScalarType::kString: return "\"" + EscapeQuoted(as_string()) + "\"";
    case ScalarType::kBool: return as_bool() ? "TRUE" : "FALSE";
  }
  return "?";
}

Result<Value> Value::FromString(const std::string& repr) {
  std::string_view s = Trim(repr);
  if (s.empty()) return Status::ParseError("empty value literal");
  if (s == "NULL") return Value::Null();
  if (s == "TRUE") return Value(true);
  if (s == "FALSE") return Value(false);
  if (s.front() == '"') {
    if (s.size() < 2 || s.back() != '"') {
      return Status::ParseError("unterminated string literal: " + repr);
    }
    std::string out;
    if (!UnescapeQuoted(s.substr(1, s.size() - 2), &out)) {
      return Status::ParseError("bad escape in string literal: " + repr);
    }
    return Value(std::move(out));
  }
  // Numeric: float iff it contains '.', 'e' or 'E'.
  std::string text(s);
  bool is_float = text.find_first_of(".eE") != std::string::npos;
  char* end = nullptr;
  if (is_float) {
    double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      return Status::ParseError("bad float literal: " + repr);
    }
    return Value(d);
  }
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::ParseError("bad integer literal: " + repr);
  }
  return Value(static_cast<int64_t>(v));
}

bool Value::AssignableTo(ScalarType t) const {
  if (is_null()) return true;
  if (type() == t) return true;
  if (is_long() && t == ScalarType::kFloat) return true;
  return false;
}

Result<Value> Value::CoerceTo(ScalarType t) const {
  if (is_null()) return *this;
  if (type() == t) return *this;
  if (is_long() && t == ScalarType::kFloat) {
    return Value(static_cast<double>(as_long()));
  }
  return Status::InvalidArgument(
      std::string("cannot assign ") + ScalarTypeName(type()) + " value " +
      ToString() + " to member of type " + ScalarTypeName(t));
}

}  // namespace exotica::data
