// Structure types for data containers.
//
// A container's shape is described by a StructType: an ordered list of
// members, each a scalar or a (registered) nested structure. Members are
// addressed with dotted paths, e.g. "Order.Customer.Id".

#ifndef EXOTICA_DATA_TYPES_H_
#define EXOTICA_DATA_TYPES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/value.h"

namespace exotica::data {

class TypeRegistry;

/// \brief One declared member of a structure.
struct Member {
  std::string name;
  /// Scalar type, or kNull when the member is a nested structure.
  ScalarType scalar = ScalarType::kNull;
  /// Name of the nested structure type; empty for scalars.
  std::string struct_type;
  /// Optional default value (scalars only).
  Value default_value;

  bool is_struct() const { return !struct_type.empty(); }
};

/// \brief An ordered, named collection of members.
class StructType {
 public:
  explicit StructType(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Member>& members() const { return members_; }

  /// Appends a scalar member. AlreadyExists on duplicate name.
  Status AddScalar(const std::string& member_name, ScalarType type,
                   Value default_value = Value());

  /// Appends a nested-structure member. The type is resolved lazily against
  /// the registry when the container is instantiated.
  Status AddStruct(const std::string& member_name, const std::string& type_name);

  /// Member by name, or NotFound.
  Result<const Member*> FindMember(const std::string& member_name) const;

  bool HasMember(const std::string& member_name) const;

 private:
  std::string name_;
  std::vector<Member> members_;
};

/// \brief Registry of named structure types; owns them.
///
/// The registry rejects recursive structure definitions at registration
/// time (a structure may not, directly or transitively, contain itself).
class TypeRegistry {
 public:
  TypeRegistry();

  /// Registers a type. AlreadyExists on duplicate name; ValidationError if
  /// the type (transitively) references itself or an unknown nested type
  /// that is also not registered later — unknown references are checked at
  /// Seal()/instantiation.
  Status Register(StructType type);

  Result<const StructType*> Find(const std::string& name) const;
  bool Has(const std::string& name) const { return types_.count(name) > 0; }

  /// Verifies every nested-structure reference resolves and no cycles
  /// exist. Call after all Register()s.
  Status Validate() const;

  /// Expands a struct type into the flat list of (dotted path, scalar type,
  /// default) leaves, in declaration order. Fails on unresolved references
  /// or cycles.
  struct Leaf {
    std::string path;
    ScalarType type;
    Value default_value;
  };
  Result<std::vector<Leaf>> Flatten(const std::string& type_name) const;

  /// Names of all registered types, in registration order.
  std::vector<std::string> TypeNames() const { return order_; }

  /// The built-in type "_Default" with the single member `RC : LONG`.
  /// FlowMark gives every activity a default container carrying the return
  /// code; translated transaction models lean on it heavily.
  static constexpr const char* kDefaultTypeName = "_Default";

 private:
  Status FlattenInto(const std::string& type_name, const std::string& prefix,
                     std::vector<std::string>* stack,
                     std::vector<Leaf>* out) const;

  std::map<std::string, StructType> types_;
  std::vector<std::string> order_;
};

}  // namespace exotica::data

#endif  // EXOTICA_DATA_TYPES_H_
