#include "data/container.h"

#include "common/strings.h"

namespace exotica::data {

Result<Container> Container::Create(const TypeRegistry& registry,
                                    const std::string& type_name) {
  EXO_ASSIGN_OR_RETURN(std::vector<TypeRegistry::Leaf> leaves,
                       registry.Flatten(type_name));
  auto layout = std::make_shared<Layout>();
  layout->type_name = type_name;
  layout->paths.reserve(leaves.size());
  layout->types.reserve(leaves.size());
  layout->defaults.reserve(leaves.size());
  for (TypeRegistry::Leaf& leaf : leaves) {
    layout->index.emplace(leaf.path,
                          static_cast<uint32_t>(layout->paths.size()));
    layout->paths.push_back(std::move(leaf.path));
    layout->types.push_back(leaf.type);
    layout->defaults.push_back(std::move(leaf.default_value));
  }
  Container c;
  // values_ stays empty until the first write: a never-written container
  // needs no slot storage (reads fall back to the declared defaults), so
  // copying a fresh container — the hot path in instance spin-up — moves
  // no values at all.
  c.layout_ = std::move(layout);
  return c;
}

Container Container::Default(const TypeRegistry& registry) {
  auto r = Create(registry, TypeRegistry::kDefaultTypeName);
  // The built-in type always exists and is flat; Create cannot fail.
  return std::move(r).value();
}

Result<uint32_t> Container::SlotOf(const std::string& path) const {
  if (layout_ != nullptr) {
    auto it = layout_->index.find(path);
    if (it != layout_->index.end()) return it->second;
  }
  return Status::NotFound("no member " + path + " in container of type " +
                          type_name());
}

Result<ScalarType> Container::TypeOf(const std::string& path) const {
  EXO_ASSIGN_OR_RETURN(uint32_t slot, SlotOf(path));
  return layout_->types[slot];
}

Result<Value> Container::Get(const std::string& path) const {
  EXO_ASSIGN_OR_RETURN(uint32_t slot, SlotOf(path));
  return GetSlot(slot);
}

Status Container::Set(const std::string& path, const Value& value) {
  EXO_ASSIGN_OR_RETURN(uint32_t slot, SlotOf(path));
  EXO_ASSIGN_OR_RETURN(Value coerced, value.CoerceTo(layout_->types[slot]));
  if (values_.size() <= slot) values_.resize(layout_->paths.size());
  values_[slot] = std::move(coerced);
  return Status::OK();
}

void Container::Reset() { values_.clear(); }

std::string Container::Serialize() const {
  std::string out;
  if (layout_ == nullptr) return out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) continue;
    out += layout_->paths[i];
    out += '=';
    out += values_[i].ToString();
    out += '\n';
  }
  return out;
}

Status Container::Deserialize(const std::string& image) {
  Reset();
  for (const std::string& line : Split(image, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("container image line missing '=': " + line);
    }
    std::string path(Trim(trimmed.substr(0, eq)));
    EXO_ASSIGN_OR_RETURN(Value v,
                         Value::FromString(std::string(trimmed.substr(eq + 1))));
    EXO_RETURN_NOT_OK(Set(path, v));
  }
  return Status::OK();
}

bool Container::operator==(const Container& other) const {
  if (type_name() != other.type_name()) return false;
  for (const std::string& path : paths()) {
    auto a = Get(path);
    auto b = other.Get(path);
    if (!a.ok() || !b.ok()) return false;
    if (a.value() != b.value()) return false;
  }
  return true;
}

Status DataMapping::Validate(const Container& source_shape,
                             const Container& target_shape) const {
  for (const FieldMap& m : maps_) {
    EXO_ASSIGN_OR_RETURN(ScalarType from, source_shape.TypeOf(m.from_path));
    EXO_ASSIGN_OR_RETURN(ScalarType to, target_shape.TypeOf(m.to_path));
    bool compatible = (from == to) ||
                      (from == ScalarType::kLong && to == ScalarType::kFloat);
    if (!compatible) {
      return Status::ValidationError(
          StrFormat("data mapping %s (%s) -> %s (%s) is type-incompatible",
                    m.from_path.c_str(), ScalarTypeName(from),
                    m.to_path.c_str(), ScalarTypeName(to)));
    }
  }
  return Status::OK();
}

Status DataMapping::Apply(const Container& source, Container* target) const {
  for (const FieldMap& m : maps_) {
    EXO_ASSIGN_OR_RETURN(Value v, source.Get(m.from_path));
    if (v.is_null()) continue;
    EXO_RETURN_NOT_OK(target->Set(m.to_path, v));
  }
  return Status::OK();
}

}  // namespace exotica::data
