#include "data/container.h"

#include "common/strings.h"

namespace exotica::data {

Result<Container> Container::Create(const TypeRegistry& registry,
                                    const std::string& type_name) {
  EXO_ASSIGN_OR_RETURN(std::vector<TypeRegistry::Leaf> leaves,
                       registry.Flatten(type_name));
  Container c;
  c.type_name_ = type_name;
  for (TypeRegistry::Leaf& leaf : leaves) {
    c.order_.push_back(leaf.path);
    c.slots_[leaf.path] = Slot{leaf.type, std::move(leaf.default_value), Value()};
  }
  return c;
}

Container Container::Default(const TypeRegistry& registry) {
  auto r = Create(registry, TypeRegistry::kDefaultTypeName);
  // The built-in type always exists and is flat; Create cannot fail.
  return std::move(r).value();
}

Result<ScalarType> Container::TypeOf(const std::string& path) const {
  auto it = slots_.find(path);
  if (it == slots_.end()) {
    return Status::NotFound("no member " + path + " in container of type " +
                            type_name_);
  }
  return it->second.type;
}

Result<Value> Container::Get(const std::string& path) const {
  auto it = slots_.find(path);
  if (it == slots_.end()) {
    return Status::NotFound("no member " + path + " in container of type " +
                            type_name_);
  }
  const Slot& s = it->second;
  return s.value.is_null() ? s.default_value : s.value;
}

Status Container::Set(const std::string& path, const Value& value) {
  auto it = slots_.find(path);
  if (it == slots_.end()) {
    return Status::NotFound("no member " + path + " in container of type " +
                            type_name_);
  }
  Slot& s = it->second;
  EXO_ASSIGN_OR_RETURN(Value coerced, value.CoerceTo(s.type));
  s.value = std::move(coerced);
  return Status::OK();
}

void Container::Reset() {
  for (auto& [path, slot] : slots_) {
    (void)path;
    slot.value = Value();
  }
}

std::string Container::Serialize() const {
  std::string out;
  for (const std::string& path : order_) {
    const Slot& s = slots_.at(path);
    if (s.value.is_null()) continue;
    out += path;
    out += '=';
    out += s.value.ToString();
    out += '\n';
  }
  return out;
}

Status Container::Deserialize(const std::string& image) {
  Reset();
  for (const std::string& line : Split(image, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("container image line missing '=': " + line);
    }
    std::string path(Trim(trimmed.substr(0, eq)));
    EXO_ASSIGN_OR_RETURN(Value v,
                         Value::FromString(std::string(trimmed.substr(eq + 1))));
    EXO_RETURN_NOT_OK(Set(path, v));
  }
  return Status::OK();
}

bool Container::operator==(const Container& other) const {
  if (type_name_ != other.type_name_) return false;
  for (const std::string& path : order_) {
    auto a = Get(path);
    auto b = other.Get(path);
    if (!a.ok() || !b.ok()) return false;
    if (a.value() != b.value()) return false;
  }
  return true;
}

Status DataMapping::Validate(const Container& source_shape,
                             const Container& target_shape) const {
  for (const FieldMap& m : maps_) {
    EXO_ASSIGN_OR_RETURN(ScalarType from, source_shape.TypeOf(m.from_path));
    EXO_ASSIGN_OR_RETURN(ScalarType to, target_shape.TypeOf(m.to_path));
    bool compatible = (from == to) ||
                      (from == ScalarType::kLong && to == ScalarType::kFloat);
    if (!compatible) {
      return Status::ValidationError(
          StrFormat("data mapping %s (%s) -> %s (%s) is type-incompatible",
                    m.from_path.c_str(), ScalarTypeName(from),
                    m.to_path.c_str(), ScalarTypeName(to)));
    }
  }
  return Status::OK();
}

Status DataMapping::Apply(const Container& source, Container* target) const {
  for (const FieldMap& m : maps_) {
    EXO_ASSIGN_OR_RETURN(Value v, source.Get(m.from_path));
    if (v.is_null()) continue;
    EXO_RETURN_NOT_OK(target->Set(m.to_path, v));
  }
  return Status::OK();
}

}  // namespace exotica::data
