#include "data/types.h"

#include <algorithm>

namespace exotica::data {

Status StructType::AddScalar(const std::string& member_name, ScalarType type,
                             Value default_value) {
  if (HasMember(member_name)) {
    return Status::AlreadyExists("member already declared: " + name_ + "." +
                                 member_name);
  }
  if (type == ScalarType::kNull) {
    return Status::InvalidArgument("member type may not be NULL: " + member_name);
  }
  if (!default_value.is_null()) {
    EXO_ASSIGN_OR_RETURN(default_value, default_value.CoerceTo(type));
  }
  members_.push_back(Member{member_name, type, "", std::move(default_value)});
  return Status::OK();
}

Status StructType::AddStruct(const std::string& member_name,
                             const std::string& type_name) {
  if (HasMember(member_name)) {
    return Status::AlreadyExists("member already declared: " + name_ + "." +
                                 member_name);
  }
  if (type_name.empty()) {
    return Status::InvalidArgument("nested structure type name empty for member " +
                                   member_name);
  }
  members_.push_back(Member{member_name, ScalarType::kNull, type_name, Value()});
  return Status::OK();
}

Result<const Member*> StructType::FindMember(const std::string& member_name) const {
  for (const Member& m : members_) {
    if (m.name == member_name) return &m;
  }
  return Status::NotFound("no member " + member_name + " in structure " + name_);
}

bool StructType::HasMember(const std::string& member_name) const {
  return std::any_of(members_.begin(), members_.end(),
                     [&](const Member& m) { return m.name == member_name; });
}

TypeRegistry::TypeRegistry() {
  StructType def(kDefaultTypeName);
  Status st = def.AddScalar("RC", ScalarType::kLong, Value(int64_t{0}));
  (void)st;  // cannot fail on a fresh type
  types_.emplace(def.name(), std::move(def));
  order_.push_back(kDefaultTypeName);
}

Status TypeRegistry::Register(StructType type) {
  if (types_.count(type.name()) > 0) {
    return Status::AlreadyExists("structure type already registered: " +
                                 type.name());
  }
  if (type.name().empty()) {
    return Status::InvalidArgument("structure type name may not be empty");
  }
  order_.push_back(type.name());
  types_.emplace(type.name(), std::move(type));
  return Status::OK();
}

Result<const StructType*> TypeRegistry::Find(const std::string& name) const {
  auto it = types_.find(name);
  if (it == types_.end()) {
    return Status::NotFound("unknown structure type: " + name);
  }
  return &it->second;
}

Status TypeRegistry::Validate() const {
  for (const auto& [name, type] : types_) {
    (void)type;
    auto leaves = Flatten(name);
    if (!leaves.ok()) return leaves.status();
  }
  return Status::OK();
}

Result<std::vector<TypeRegistry::Leaf>> TypeRegistry::Flatten(
    const std::string& type_name) const {
  std::vector<Leaf> out;
  std::vector<std::string> stack;
  EXO_RETURN_NOT_OK(FlattenInto(type_name, "", &stack, &out));
  return out;
}

Status TypeRegistry::FlattenInto(const std::string& type_name,
                                 const std::string& prefix,
                                 std::vector<std::string>* stack,
                                 std::vector<Leaf>* out) const {
  if (std::find(stack->begin(), stack->end(), type_name) != stack->end()) {
    return Status::ValidationError("recursive structure type: " + type_name);
  }
  auto it = types_.find(type_name);
  if (it == types_.end()) {
    return Status::ValidationError("unresolved structure type reference: " +
                                   type_name);
  }
  stack->push_back(type_name);
  for (const Member& m : it->second.members()) {
    std::string path = prefix.empty() ? m.name : prefix + "." + m.name;
    if (m.is_struct()) {
      EXO_RETURN_NOT_OK(FlattenInto(m.struct_type, path, stack, out));
    } else {
      out->push_back(Leaf{std::move(path), m.scalar, m.default_value});
    }
  }
  stack->pop_back();
  return Status::OK();
}

}  // namespace exotica::data
