// Data containers: the typed variable stores attached to every activity
// and process (paper §3.2, "Input Container" / "Output Container").

#ifndef EXOTICA_DATA_CONTAINER_H_
#define EXOTICA_DATA_CONTAINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/types.h"
#include "data/value.h"

namespace exotica::data {

/// \brief An instance of a StructType: dotted leaf paths → values.
///
/// Containers are instantiated from a TypeRegistry, which fixes the set of
/// legal paths and their scalar types. Reads of never-written members yield
/// the declared default (or null). Writes are type-checked.
///
/// The shape (paths, types, defaults, path→slot index) is an immutable
/// Layout shared by every copy of a container, so copying a container —
/// the hot operation in instance spin-up, where every activity gets its
/// input and output containers from a prototype — copies only the flat
/// value vector and bumps the layout refcount. The value vector itself is
/// allocated lazily on the first write, so copying a never-written
/// container moves no values at all.
class Container {
 public:
  /// Creates a container of shape `type_name`. Fails if the type is
  /// unknown, recursive, or has unresolved nested references.
  static Result<Container> Create(const TypeRegistry& registry,
                                  const std::string& type_name);

  /// An empty container of the built-in `_Default` shape (RC : LONG = 0).
  static Container Default(const TypeRegistry& registry);

  const std::string& type_name() const {
    static const std::string kEmpty;
    return layout_ ? layout_->type_name : kEmpty;
  }

  /// All legal leaf paths, in declaration order.
  const std::vector<std::string>& paths() const {
    static const std::vector<std::string> kNone;
    return layout_ ? layout_->paths : kNone;
  }

  bool HasPath(const std::string& path) const {
    return layout_ && layout_->index.count(path) > 0;
  }

  /// Sentinel returned by SlotIndex for unknown paths.
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  /// Number of member slots in this container's layout.
  uint32_t slot_count() const {
    return layout_ ? static_cast<uint32_t>(layout_->paths.size()) : 0;
  }

  /// Slot index of a leaf path (stable across every container of this
  /// layout), or kNoSlot. Resolve once, then read via GetSlot.
  uint32_t SlotIndex(const std::string& path) const {
    if (!layout_) return kNoSlot;
    auto it = layout_->index.find(path);
    return it == layout_->index.end() ? kNoSlot : it->second;
  }

  /// Current value of slot `slot` (declared default if never written).
  /// The slot must be < slot_count(); no bounds check — this is the
  /// compiled-condition VM's read path.
  const Value& GetSlot(uint32_t slot) const {
    if (slot < values_.size() && !values_[slot].is_null()) {
      return values_[slot];
    }
    return layout_->defaults[slot];
  }

  /// Declared scalar type of slot `slot` (no bounds check). Set() coerces
  /// every write to the declared type (long widens to float), so a
  /// non-null slot value always has exactly this type — the invariant the
  /// typed condition compiler monomorphizes against.
  ScalarType SlotType(uint32_t slot) const { return layout_->types[slot]; }

  /// Typed slot reads for callers that have proven the declared type and
  /// non-nullness (the typed condition VM: null-check GetSlot first).
  int64_t GetSlotLong(uint32_t slot) const { return GetSlot(slot).as_long(); }
  double GetSlotFloat(uint32_t slot) const { return GetSlot(slot).as_float(); }
  bool GetSlotBool(uint32_t slot) const { return GetSlot(slot).as_bool(); }

  /// Raw slot-storage views for native condition code (codegen::), which
  /// replicates GetSlot's written-else-default-else-error read without
  /// calling back into C++. values_ is lazily grown, so the data pointer
  /// may be null and the size smaller than slot_count(); generated code
  /// bounds-checks against the size before dereferencing.
  const Value* slot_values_data() const { return values_.data(); }
  uint64_t slot_values_size() const { return values_.size(); }
  const Value* slot_defaults_data() const {
    return layout_ ? layout_->defaults.data() : nullptr;
  }

  /// Declared scalar type of a leaf. NotFound for unknown paths.
  Result<ScalarType> TypeOf(const std::string& path) const;

  /// Current value of a leaf (default if never written). NotFound for
  /// unknown paths.
  Result<Value> Get(const std::string& path) const;

  /// Type-checked write (long widens to float). NotFound / InvalidArgument.
  Status Set(const std::string& path, const Value& value);

  /// Resets every member to its declared default.
  void Reset();

  /// Serializes the non-default members as `path=value` lines (journal /
  /// audit format).
  std::string Serialize() const;

  /// Applies a Serialize()d image on top of the defaults.
  Status Deserialize(const std::string& image);

  bool operator==(const Container& other) const;

 private:
  /// Immutable shape, shared across all copies of a container.
  struct Layout {
    std::string type_name;
    std::vector<std::string> paths;  ///< declaration order
    std::vector<ScalarType> types;
    std::vector<Value> defaults;
    std::map<std::string, uint32_t> index;  ///< path → slot
  };

  Result<uint32_t> SlotOf(const std::string& path) const;

  std::shared_ptr<const Layout> layout_;
  /// One slot per path once anything has been written; empty until then.
  /// Null (or absent) slots read as the declared default.
  std::vector<Value> values_;
};

/// \brief One field-to-field mapping of a data connector.
struct FieldMap {
  std::string from_path;  ///< path in the source (output) container
  std::string to_path;    ///< path in the target (input) container
};

/// \brief A data connector's payload: an ordered list of field mappings
/// (paper §3.2, "Flow of Data ... a series of mappings between output data
/// containers and input data containers").
class DataMapping {
 public:
  DataMapping() = default;

  void Add(std::string from_path, std::string to_path) {
    maps_.push_back(FieldMap{std::move(from_path), std::move(to_path)});
  }

  const std::vector<FieldMap>& maps() const { return maps_; }
  bool empty() const { return maps_.empty(); }

  /// Checks every mapping is path- and type-compatible between the two
  /// container shapes.
  Status Validate(const Container& source_shape,
                  const Container& target_shape) const;

  /// Copies mapped fields from `source` into `target`. Unwritten (null)
  /// source members are skipped so later connectors can layer over earlier
  /// ones without erasing data.
  Status Apply(const Container& source, Container* target) const;

 private:
  std::vector<FieldMap> maps_;
};

}  // namespace exotica::data

#endif  // EXOTICA_DATA_CONTAINER_H_
