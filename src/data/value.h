// Value: a dynamically-typed scalar stored in workflow data containers.
//
// FlowMark containers hold "a sequence of typed variables and structures"
// (paper §3.2). Scalars here are LONG, FLOAT, STRING, BOOLEAN; structures
// are modelled at the container level (see container.h) as dotted paths
// over these scalars.

#ifndef EXOTICA_DATA_VALUE_H_
#define EXOTICA_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace exotica::data {

/// \brief The scalar types supported in containers and expressions.
enum class ScalarType : int {
  kNull = 0,
  kLong = 1,
  kFloat = 2,
  kString = 3,
  kBool = 4,
};

/// \brief "LONG" / "FLOAT" / "STRING" / "BOOLEAN" / "NULL".
const char* ScalarTypeName(ScalarType t);

/// \brief Parses a type name (case-insensitive). NotFound if unknown.
Result<ScalarType> ScalarTypeFromName(const std::string& name);

/// \brief A dynamically typed scalar value.
///
/// Default-constructed Values are null: a container member that has never
/// been written. Null propagates through expressions as an evaluation error,
/// which matches FlowMark's behaviour of a condition over unset data being
/// unevaluable.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(bool v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  static Value Null() { return Value(); }

  ScalarType type() const {
    switch (v_.index()) {
      case 0: return ScalarType::kNull;
      case 1: return ScalarType::kLong;
      case 2: return ScalarType::kFloat;
      case 3: return ScalarType::kString;
      case 4: return ScalarType::kBool;
    }
    return ScalarType::kNull;
  }

  bool is_null() const { return type() == ScalarType::kNull; }
  bool is_long() const { return type() == ScalarType::kLong; }
  bool is_float() const { return type() == ScalarType::kFloat; }
  bool is_string() const { return type() == ScalarType::kString; }
  bool is_bool() const { return type() == ScalarType::kBool; }
  /// Long or float.
  bool is_numeric() const { return is_long() || is_float(); }

  int64_t as_long() const { return std::get<int64_t>(v_); }
  double as_float() const { return std::get<double>(v_); }
  bool as_bool() const { return std::get<bool>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric value widened to double; error for non-numerics.
  Result<double> ToDouble() const;

  /// Exact structural equality (type + payload). Null == Null.
  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Human/debug representation, e.g. `42`, `3.5`, `"abc"`, `TRUE`, `NULL`.
  std::string ToString() const;

  /// Parses the representation produced by ToString. Used by the journal.
  static Result<Value> FromString(const std::string& repr);

  /// True if this value is assignable to a member declared as `t`
  /// (exact type match, or long widening to float). Nulls assign anywhere.
  bool AssignableTo(ScalarType t) const;

  /// Returns this value coerced to declared type `t` (long→float widening
  /// only). InvalidArgument on any other mismatch.
  Result<Value> CoerceTo(ScalarType t) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> v_;
};

}  // namespace exotica::data

#endif  // EXOTICA_DATA_VALUE_H_
