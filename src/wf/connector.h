// Control and data connectors (paper §3.2, "Flow of Control" / "Flow of
// Data").

#ifndef EXOTICA_WF_CONNECTOR_H_
#define EXOTICA_WF_CONNECTOR_H_

#include <string>

#include "data/container.h"
#include "expr/condition.h"

namespace exotica::wf {

/// \brief A directed control edge with a transition condition.
///
/// The condition is evaluated over the source activity's *output
/// container* when the source terminates. A false connector does not
/// trigger the target and feeds dead path elimination.
struct ControlConnector {
  std::string from;
  std::string to;
  expr::Condition condition;

  /// An "otherwise" connector fires iff every non-otherwise connector out
  /// of the same source evaluated false. Its `condition` is ignored.
  bool is_otherwise = false;
};

/// \brief Where a data connector starts or ends.
///
/// Process input/output containers let a process exchange data with its
/// caller (for blocks: with the process activity that embeds them).
struct DataEndpoint {
  enum class Kind : int { kActivity = 0, kProcessInput = 1, kProcessOutput = 2 };

  Kind kind = Kind::kActivity;
  std::string activity;  ///< empty for process endpoints

  static DataEndpoint Of(std::string activity_name) {
    return DataEndpoint{Kind::kActivity, std::move(activity_name)};
  }
  static DataEndpoint ProcessInput() {
    return DataEndpoint{Kind::kProcessInput, ""};
  }
  static DataEndpoint ProcessOutput() {
    return DataEndpoint{Kind::kProcessOutput, ""};
  }

  bool is_activity() const { return kind == Kind::kActivity; }

  std::string ToString() const {
    switch (kind) {
      case Kind::kActivity: return activity;
      case Kind::kProcessInput: return "<process input>";
      case Kind::kProcessOutput: return "<process output>";
    }
    return "?";
  }

  bool operator==(const DataEndpoint& o) const {
    return kind == o.kind && activity == o.activity;
  }
};

/// \brief A directed data edge carrying field mappings.
///
/// Source fields are read from the source activity's output container
/// (or the process input container); target fields are written into the
/// target activity's input container (or the process output container).
struct DataConnector {
  DataEndpoint from;
  DataEndpoint to;
  data::DataMapping mapping;
};

}  // namespace exotica::wf

#endif  // EXOTICA_WF_CONNECTOR_H_
