// NavigationPlan: a compile-once/navigate-many index of a
// ProcessDefinition.
//
// The navigator's inner loop (ready-queue dispatch, connector evaluation,
// join decisions, data pushes) used to resolve every topology query
// through string-keyed maps on the definition. The plan assigns each
// activity a dense integer id (its index in activities()) and precomputes
// every adjacency list, join fan-in, connector slot, and start set as
// plain vectors of indices, so a navigation step touches only
// integer-indexed arrays. String names survive solely at API boundaries,
// audit events, and journal records — the on-disk format is unchanged.
//
// The plan holds *indices only*, never pointers into the definition, so a
// copied definition can safely share its predecessor's plan as long as
// the topology is identical (definitions are immutable after
// validation; the Add* mutators invalidate any cached plan).

#ifndef EXOTICA_WF_PLAN_H_
#define EXOTICA_WF_PLAN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "expr/vm.h"

namespace exotica::codegen {
class NativeStepUnit;
}  // namespace exotica::codegen

namespace exotica::wf {

class ProcessDefinition;

/// \brief Byte offsets of the packed per-instance *hot block* (see
/// docs/specs/instance_layout.md).
///
/// With EngineOptions::packed_instance_state the per-activity hot fields
/// live in one contiguous byte block instead of striding fat
/// ActivityRuntime structs: a dense state byte per activity, the
/// ready-queue dedup byte, the two connector-eval planes, and 4-aligned
/// int32 attempt/failures arrays. The layout is fixed per plan, so an
/// InstanceArena can preformat the whole block as a single memcpy-able
/// image. Cold per-activity state (containers, work items, child links)
/// stays out of the block entirely.
struct HotLayout {
  uint32_t state_base = 0;     ///< n bytes: ActivityState per activity
  uint32_t enqueued_base = 0;  ///< n bytes: ready-queue dedup bitmap
  uint32_t in_eval_base = 0;   ///< in_eval_total int8 slots
  uint32_t out_eval_base = 0;  ///< out_eval_total int8 slots
  uint32_t attempt_base = 0;   ///< n int32 (4-aligned)
  uint32_t failures_base = 0;  ///< n int32
  uint32_t size = 0;           ///< total block size in bytes

  static constexpr HotLayout Compute(uint32_t n, uint32_t in_total,
                                     uint32_t out_total) {
    HotLayout l;
    l.state_base = 0;
    l.enqueued_base = n;
    l.in_eval_base = 2 * n;
    l.out_eval_base = 2 * n + in_total;
    l.attempt_base = (2 * n + in_total + out_total + 3u) & ~3u;
    l.failures_base = l.attempt_base + 4 * n;
    l.size = l.failures_base + 4 * n;
    return l;
  }
};

// Layout regressions fail at compile time: the byte planes are dense and
// adjacent, the int32 planes 4-aligned, and the block never pads beyond
// the alignment gap.
static_assert(HotLayout::Compute(4, 3, 5).enqueued_base == 4);
static_assert(HotLayout::Compute(4, 3, 5).in_eval_base == 8);
static_assert(HotLayout::Compute(4, 3, 5).out_eval_base == 11);
static_assert(HotLayout::Compute(4, 3, 5).attempt_base == 16);
static_assert(HotLayout::Compute(4, 3, 5).failures_base == 32);
static_assert(HotLayout::Compute(4, 3, 5).size == 48);
static_assert(HotLayout::Compute(1, 0, 0).attempt_base % 4 == 0);
static_assert(HotLayout::Compute(1000, 999, 999).attempt_base % 4 == 0);
static_assert(HotLayout::Compute(0, 0, 0).size == 0);

/// \brief One instruction of an activity's fused outgoing-sweep *step
/// program* (see docs/specs/step_program.md).
///
/// At plan build time the entire outgoing sweep of each activity — the
/// non-otherwise connector loop, otherwise resolution, and the journal /
/// audit emission order — is compiled into one straight-line instruction
/// sequence: connector indices, absolute out_evals slots, and condition
/// program ids are resolved here so the runtime dispatch loop
/// (Engine::RunStepProgram) does no per-connector kind discovery. The
/// instruction stream for activity `a` starts at
/// ActivityInfo::step_base and is terminated by kEnd; non-otherwise
/// instructions always precede kOtherwise ones, preserving the
/// interpreted sweep's journal record order byte for byte.
struct StepInstr {
  enum class Op : uint8_t {
    kTrivial,    ///< unconditioned connector: fires true
    kVm,         ///< conditioned, VM-compiled: run vm_program(prog)
    kTree,       ///< conditioned, unbindable: tree-walk the condition
    kOtherwise,  ///< OTHERWISE connector: true iff no sibling fired
    kEnd,        ///< end of this activity's program
  };
  Op op = Op::kEnd;
  uint32_t cidx = 0;     ///< control connector index
  uint32_t out_idx = 0;  ///< absolute slot in the instance's out_evals
  int32_t prog = -1;     ///< kVm: index into vm_program()
};

/// \brief Immutable compiled navigation index for one ProcessDefinition.
class NavigationPlan {
 public:
  /// Sentinel target id for data connectors writing the process output.
  static constexpr uint32_t kProcessOutput =
      std::numeric_limits<uint32_t>::max();

  /// \brief Per-activity adjacency and dispatch flags.
  struct ActivityInfo {
    /// Outgoing / incoming control connector indices, insertion order
    /// (identical to ProcessDefinition::OutgoingControl / IncomingControl).
    std::vector<uint32_t> out_control;
    std::vector<uint32_t> in_control;
    /// Data connector indices whose source is this activity's output.
    std::vector<uint32_t> out_data;
    /// Join fan-in (== in_control.size(), cached for the join decision).
    uint32_t join_fan_in = 0;
    /// Offsets of this activity's connector-evaluation slots inside the
    /// instance-wide flat eval arrays (prefix sums of the in/out adjacency
    /// sizes; see ProcessInstance::in_evals).
    uint32_t in_eval_base = 0;
    uint32_t out_eval_base = 0;
    /// Start of this activity's step program inside step_program(0)'s
    /// flat instruction array (terminated by StepInstr::Op::kEnd).
    uint32_t step_base = 0;
    bool manual = false;       ///< StartMode::kManual
    bool block = false;        ///< ActivityKind::kProcess
    bool or_join = false;      ///< JoinKind::kOr
    bool trivial_exit = true;  ///< exit condition is always-true
    /// True when some outgoing connector must tree-walk its condition
    /// (non-trivial, non-otherwise, and not VM-compiled) — the only case
    /// the sweep needs an expr::ContainerResolver when the VM is on.
    bool needs_resolver = false;
    /// True when any outgoing connector carries a non-trivial condition
    /// (the sweep needs a resolver whenever the condition VM is off).
    bool has_cond_out = false;
    /// Compiled exit-condition program (index into vm_program()), or -1
    /// when the condition is trivial or couldn't be bound (tree-walk).
    int32_t exit_vm = -1;
  };

  /// \brief Per-control-connector endpoints and dedup slots.
  struct ConnectorInfo {
    uint32_t from = 0;      ///< source activity id
    uint32_t to = 0;        ///< target activity id
    uint32_t out_slot = 0;  ///< position in from's out_control list
    uint32_t in_slot = 0;   ///< position in to's in_control list
    bool is_otherwise = false;
    bool trivial = true;    ///< always-true transition condition
    /// Compiled transition-condition program (index into vm_program()),
    /// or -1 when trivial/OTHERWISE or unbindable (tree-walk fallback).
    int32_t cond_vm = -1;
  };

  /// \brief Per-data-connector target (source is implied by out_data /
  /// input_data membership).
  struct DataTarget {
    uint32_t to = kProcessOutput;  ///< activity id, or kProcessOutput
  };

  /// Compiles `definition`. The definition must be a DAG (enforced by
  /// ValidateProcess before registration). When `types` is given (the
  /// registry the definition was validated against), every non-trivial
  /// exit/transition condition is additionally lowered to a
  /// CompiledCondition bound to its activity's output-container layout;
  /// without a registry — the lazy plan() path for hand-built definitions
  /// — no programs are compiled and the runtime tree-walks every
  /// condition.
  static NavigationPlan Compile(const ProcessDefinition& definition,
                                const data::TypeRegistry* types = nullptr);

  uint32_t activity_count() const {
    return static_cast<uint32_t>(activities_.size());
  }
  const ActivityInfo& activity(uint32_t id) const { return activities_[id]; }
  const ConnectorInfo& connector(uint32_t index) const {
    return connectors_[index];
  }
  const DataTarget& data_target(uint32_t index) const { return data_[index]; }

  /// Activity ids with no incoming control connectors, declaration order.
  const std::vector<uint32_t>& start_activities() const { return start_; }

  /// Data connector indices sourced at the process input container,
  /// insertion order.
  const std::vector<uint32_t>& input_data() const { return input_data_; }

  /// Topological order of activity ids (Kahn over declaration order —
  /// matches ProcessDefinition::TopologicalOrder exactly).
  const std::vector<uint32_t>& topological_order() const { return topo_; }

  /// Activity ids sorted by activity name (the iteration order of the old
  /// name-keyed runtime map; lifecycle sweeps preserve it for
  /// deterministic audit ordering).
  const std::vector<uint32_t>& ids_by_name() const { return by_name_; }

  /// Total incoming / outgoing eval slots across all activities — the
  /// sizes of the instance-wide flat eval arrays.
  uint32_t in_eval_total() const { return in_eval_total_; }
  uint32_t out_eval_total() const { return out_eval_total_; }

  /// Byte offsets of the packed per-instance hot block (computed from the
  /// activity count and eval totals at plan build).
  const HotLayout& hot() const { return hot_; }

  /// Compiled condition program `index` (an ActivityInfo::exit_vm or
  /// ConnectorInfo::cond_vm value >= 0).
  const expr::CompiledCondition& vm_program(int32_t index) const {
    return vm_programs_[static_cast<size_t>(index)];
  }
  /// Number of compiled condition programs (0 when compiled without a
  /// TypeRegistry).
  size_t vm_program_count() const { return vm_programs_.size(); }

  /// The step program starting at `base` (an ActivityInfo::step_base).
  /// The returned pointer stays valid for the plan's lifetime; the
  /// program ends at its kEnd instruction.
  const StepInstr* step_program(uint32_t base) const {
    return &step_code_[base];
  }

  /// Native x86-64 functions compiled from the step programs, or null when
  /// native codegen is unavailable on this build/platform (and on plans
  /// whose arena could not be sealed). Shared so engines can pin the code
  /// past the plan if they ever need to; dispatch is gated engine-side by
  /// EngineOptions::use_native_step_programs.
  const std::shared_ptr<const codegen::NativeStepUnit>& native_unit() const {
    return native_unit_;
  }

 private:
  std::vector<ActivityInfo> activities_;
  std::vector<ConnectorInfo> connectors_;
  std::vector<DataTarget> data_;
  std::vector<uint32_t> start_;
  std::vector<uint32_t> input_data_;
  std::vector<uint32_t> topo_;
  std::vector<uint32_t> by_name_;
  std::vector<expr::CompiledCondition> vm_programs_;
  /// Concatenated per-activity step programs (each kEnd-terminated).
  std::vector<StepInstr> step_code_;
  uint32_t in_eval_total_ = 0;
  uint32_t out_eval_total_ = 0;
  HotLayout hot_;
  std::shared_ptr<const codegen::NativeStepUnit> native_unit_;
};

}  // namespace exotica::wf

#endif  // EXOTICA_WF_PLAN_H_
