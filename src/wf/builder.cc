#include "wf/builder.h"

#include "wf/validate.h"

namespace exotica::wf {

ProcessBuilder::ProcessBuilder(DefinitionStore* store, std::string process_name,
                               int version)
    : store_(store), process_(std::move(process_name), version) {}

void ProcessBuilder::Fail(Status status) {
  if (status_.ok() && !status.ok()) {
    status_ = status.WithContext("building process " + process_.name());
  }
}

Activity* ProcessBuilder::last_activity() {
  if (!have_activity_) return nullptr;
  // Activities are only appended, so the last one is stable.
  return const_cast<Activity*>(&process_.activities().back());
}

ProcessBuilder& ProcessBuilder::Description(std::string text) {
  if (!failed()) process_.set_description(std::move(text));
  return *this;
}

ProcessBuilder& ProcessBuilder::InputType(std::string type_name) {
  if (!failed()) process_.set_input_type(std::move(type_name));
  return *this;
}

ProcessBuilder& ProcessBuilder::OutputType(std::string type_name) {
  if (!failed()) process_.set_output_type(std::move(type_name));
  return *this;
}

ProcessBuilder& ProcessBuilder::Program(std::string activity_name,
                                        std::string program_name) {
  if (failed()) return *this;
  Activity a;
  a.name = std::move(activity_name);
  a.kind = ActivityKind::kProgram;
  a.program = std::move(program_name);
  // Inherit container shapes from the declaration when available; the
  // Containers() modifier can override before Build().
  if (auto decl = store_->FindProgram(a.program); decl.ok()) {
    a.input_type = decl.value()->input_type;
    a.output_type = decl.value()->output_type;
  }
  Fail(process_.AddActivity(std::move(a)));
  have_activity_ = !failed();
  return *this;
}

ProcessBuilder& ProcessBuilder::Block(std::string activity_name,
                                      std::string subprocess_name) {
  if (failed()) return *this;
  Activity a;
  a.name = std::move(activity_name);
  a.kind = ActivityKind::kProcess;
  a.subprocess = std::move(subprocess_name);
  if (auto sub = store_->FindProcess(a.subprocess); sub.ok()) {
    a.input_type = sub.value()->input_type();
    a.output_type = sub.value()->output_type();
  }
  Fail(process_.AddActivity(std::move(a)));
  have_activity_ = !failed();
  return *this;
}

ProcessBuilder& ProcessBuilder::WithDescription(std::string text) {
  if (failed()) return *this;
  if (Activity* a = last_activity()) {
    a->description = std::move(text);
  } else {
    Fail(Status::FailedPrecondition("WithDescription before any activity"));
  }
  return *this;
}

ProcessBuilder& ProcessBuilder::Manual() {
  if (failed()) return *this;
  if (Activity* a = last_activity()) {
    a->start_mode = StartMode::kManual;
  } else {
    Fail(Status::FailedPrecondition("Manual before any activity"));
  }
  return *this;
}

ProcessBuilder& ProcessBuilder::Role(std::string role_name) {
  if (failed()) return *this;
  if (Activity* a = last_activity()) {
    a->role = std::move(role_name);
  } else {
    Fail(Status::FailedPrecondition("Role before any activity"));
  }
  return *this;
}

ProcessBuilder& ProcessBuilder::OrJoin() {
  if (failed()) return *this;
  if (Activity* a = last_activity()) {
    a->join = JoinKind::kOr;
  } else {
    Fail(Status::FailedPrecondition("OrJoin before any activity"));
  }
  return *this;
}

ProcessBuilder& ProcessBuilder::ExitWhen(std::string condition_source) {
  if (failed()) return *this;
  Activity* a = last_activity();
  if (a == nullptr) {
    Fail(Status::FailedPrecondition("ExitWhen before any activity"));
    return *this;
  }
  auto cond = expr::Condition::Compile(condition_source);
  if (!cond.ok()) {
    Fail(cond.status().WithContext("exit condition of " + a->name));
    return *this;
  }
  a->exit_condition = std::move(cond).value();
  return *this;
}

ProcessBuilder& ProcessBuilder::Containers(std::string input_type,
                                           std::string output_type) {
  if (failed()) return *this;
  if (Activity* a = last_activity()) {
    a->input_type = std::move(input_type);
    a->output_type = std::move(output_type);
  } else {
    Fail(Status::FailedPrecondition("Containers before any activity"));
  }
  return *this;
}

ProcessBuilder& ProcessBuilder::NotifyAfter(Micros deadline,
                                            std::string role_name) {
  if (failed()) return *this;
  if (Activity* a = last_activity()) {
    a->notify_after_micros = deadline;
    a->notify_role = std::move(role_name);
  } else {
    Fail(Status::FailedPrecondition("NotifyAfter before any activity"));
  }
  return *this;
}

ProcessBuilder& ProcessBuilder::Connect(const std::string& from,
                                        const std::string& to,
                                        std::string condition_source) {
  if (failed()) return *this;
  ControlConnector c;
  c.from = from;
  c.to = to;
  if (!condition_source.empty()) {
    auto cond = expr::Condition::Compile(condition_source);
    if (!cond.ok()) {
      Fail(cond.status().WithContext("transition condition " + from + " -> " + to));
      return *this;
    }
    c.condition = std::move(cond).value();
  }
  Fail(process_.AddControlConnector(std::move(c)));
  return *this;
}

ProcessBuilder& ProcessBuilder::Otherwise(const std::string& from,
                                          const std::string& to) {
  if (failed()) return *this;
  ControlConnector c;
  c.from = from;
  c.to = to;
  c.is_otherwise = true;
  Fail(process_.AddControlConnector(std::move(c)));
  return *this;
}

ProcessBuilder& ProcessBuilder::MapData(const std::string& from,
                                        const std::string& to,
                                        const FieldPairs& fields) {
  if (failed()) return *this;
  DataConnector d;
  d.from = DataEndpoint::Of(from);
  d.to = DataEndpoint::Of(to);
  for (const auto& [src, dst] : fields) d.mapping.Add(src, dst);
  Fail(process_.AddDataConnector(std::move(d)));
  return *this;
}

ProcessBuilder& ProcessBuilder::MapFromInput(const std::string& to,
                                             const FieldPairs& fields) {
  if (failed()) return *this;
  DataConnector d;
  d.from = DataEndpoint::ProcessInput();
  d.to = DataEndpoint::Of(to);
  for (const auto& [src, dst] : fields) d.mapping.Add(src, dst);
  Fail(process_.AddDataConnector(std::move(d)));
  return *this;
}

ProcessBuilder& ProcessBuilder::MapToOutput(const std::string& from,
                                            const FieldPairs& fields) {
  if (failed()) return *this;
  DataConnector d;
  d.from = DataEndpoint::Of(from);
  d.to = DataEndpoint::ProcessOutput();
  for (const auto& [src, dst] : fields) d.mapping.Add(src, dst);
  Fail(process_.AddDataConnector(std::move(d)));
  return *this;
}

Result<ProcessDefinition> ProcessBuilder::Build() {
  EXO_RETURN_NOT_OK(status_);
  EXO_RETURN_NOT_OK_CTX(ValidateProcess(process_, *store_),
                        "validating process " + process_.name());
  return process_;
}

Status ProcessBuilder::Register() {
  EXO_ASSIGN_OR_RETURN(ProcessDefinition p, Build());
  return store_->AddProcess(std::move(p));
}

}  // namespace exotica::wf
