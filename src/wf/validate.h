// Structural and semantic validation of process definitions — the checks
// the paper attributes to FlowMark's import module ("checks for
// inconsistencies in the syntax of the process definition") and translator
// ("checks the semantics of the FlowMark process ... a suitable program
// definition exists, ... the control connectors are legal, etc.").

#ifndef EXOTICA_WF_VALIDATE_H_
#define EXOTICA_WF_VALIDATE_H_

#include "common/status.h"

namespace exotica::wf {

class ProcessDefinition;
class DefinitionStore;

/// \brief Validates `process` against the definitions in `store`.
///
/// Checks, in order:
///  1. non-empty name and at least one activity;
///  2. the control graph is acyclic (the model is a DAG, §3.2);
///  3. every container type (process + activities) is registered;
///  4. program activities reference declared programs with matching
///     container shapes;
///  5. process activities reference already-registered subprocesses with
///     matching container shapes (bottom-up registration forbids
///     recursive nesting by construction);
///  6. transition conditions only reference members of the source
///     activity's output container;
///  7. exit conditions only reference members of the activity's own
///     output container;
///  8. at most one "otherwise" connector per source, and only alongside at
///     least one conditioned sibling;
///  9. data connectors are type-compatible and follow the control flow
///     (an activity-to-activity data connector requires a control path).
Status ValidateProcess(const ProcessDefinition& process,
                       const DefinitionStore& store);

}  // namespace exotica::wf

#endif  // EXOTICA_WF_VALIDATE_H_
