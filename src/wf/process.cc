#include "wf/process.h"

#include <algorithm>
#include <deque>
#include <set>

#include "wf/validate.h"

namespace exotica::wf {

const char* ActivityStateName(ActivityState s) {
  switch (s) {
    case ActivityState::kWaiting: return "waiting";
    case ActivityState::kReady: return "ready";
    case ActivityState::kRunning: return "running";
    case ActivityState::kFinished: return "finished";
    case ActivityState::kTerminated: return "terminated";
    case ActivityState::kDead: return "dead";
  }
  return "?";
}

Status ProcessDefinition::AddActivity(Activity activity) {
  if (activity.name.empty()) {
    return Status::InvalidArgument("activity name may not be empty");
  }
  if (index_.count(activity.name) > 0) {
    return Status::AlreadyExists("duplicate activity name: " + activity.name +
                                 " in process " + name_);
  }
  plan_.reset();
  index_[activity.name] = activities_.size();
  activities_.push_back(std::move(activity));
  return Status::OK();
}

Status ProcessDefinition::AddControlConnector(ControlConnector connector) {
  if (!HasActivity(connector.from)) {
    return Status::NotFound("control connector source not an activity: " +
                            connector.from);
  }
  if (!HasActivity(connector.to)) {
    return Status::NotFound("control connector target not an activity: " +
                            connector.to);
  }
  if (connector.from == connector.to) {
    return Status::ValidationError("self-loop control connector on " +
                                   connector.from);
  }
  for (size_t i : OutgoingControl(connector.from)) {
    if (control_[i].to == connector.to) {
      return Status::AlreadyExists("duplicate control connector " +
                                   connector.from + " -> " + connector.to);
    }
  }
  plan_.reset();
  control_out_[connector.from].push_back(control_.size());
  control_in_[connector.to].push_back(control_.size());
  control_.push_back(std::move(connector));
  return Status::OK();
}

Status ProcessDefinition::AddDataConnector(DataConnector connector) {
  auto check = [&](const DataEndpoint& e) -> Status {
    if (e.is_activity() && !HasActivity(e.activity)) {
      return Status::NotFound("data connector endpoint not an activity: " +
                              e.activity);
    }
    return Status::OK();
  };
  EXO_RETURN_NOT_OK(check(connector.from));
  EXO_RETURN_NOT_OK(check(connector.to));
  if (connector.from.kind == DataEndpoint::Kind::kProcessOutput) {
    return Status::ValidationError(
        "data connector may not read from the process output container");
  }
  if (connector.to.kind == DataEndpoint::Kind::kProcessInput) {
    return Status::ValidationError(
        "data connector may not write to the process input container");
  }
  plan_.reset();
  data_out_[DataKey(connector.from)].push_back(data_.size());
  data_in_[DataKey(connector.to)].push_back(data_.size());
  data_.push_back(std::move(connector));
  return Status::OK();
}

std::string ProcessDefinition::DataKey(const DataEndpoint& endpoint) {
  switch (endpoint.kind) {
    case DataEndpoint::Kind::kActivity: return "a:" + endpoint.activity;
    case DataEndpoint::Kind::kProcessInput: return "<in>";
    case DataEndpoint::Kind::kProcessOutput: return "<out>";
  }
  return "?";
}

Result<const Activity*> ProcessDefinition::FindActivity(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no activity " + name + " in process " + name_);
  }
  return &activities_[it->second];
}

Result<size_t> ProcessDefinition::ActivityIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no activity " + name + " in process " + name_);
  }
  return it->second;
}

const NavigationPlan& ProcessDefinition::plan() const {
  if (plan_ == nullptr) {
    plan_ = std::make_shared<const NavigationPlan>(NavigationPlan::Compile(*this));
  }
  return *plan_;
}

void ProcessDefinition::CompilePlan(const data::TypeRegistry& types) const {
  plan_ = std::make_shared<const NavigationPlan>(
      NavigationPlan::Compile(*this, &types));
}

namespace {
std::vector<size_t> Lookup(const std::map<std::string, std::vector<size_t>>& m,
                           const std::string& key) {
  auto it = m.find(key);
  return it == m.end() ? std::vector<size_t>{} : it->second;
}
}  // namespace

std::vector<size_t> ProcessDefinition::OutgoingControl(
    const std::string& activity) const {
  return Lookup(control_out_, activity);
}

std::vector<size_t> ProcessDefinition::IncomingControl(
    const std::string& activity) const {
  return Lookup(control_in_, activity);
}

std::vector<size_t> ProcessDefinition::IncomingData(
    const DataEndpoint& endpoint) const {
  return Lookup(data_in_, DataKey(endpoint));
}

std::vector<size_t> ProcessDefinition::OutgoingData(
    const DataEndpoint& endpoint) const {
  return Lookup(data_out_, DataKey(endpoint));
}

std::vector<std::string> ProcessDefinition::StartActivities() const {
  std::vector<std::string> out;
  for (const Activity& a : activities_) {
    if (IncomingControl(a.name).empty()) out.push_back(a.name);
  }
  return out;
}

Result<std::vector<std::string>> ProcessDefinition::TopologicalOrder() const {
  std::map<std::string, int> indegree;
  for (const Activity& a : activities_) indegree[a.name] = 0;
  for (const ControlConnector& c : control_) ++indegree[c.to];

  // Kahn's algorithm, visiting in declaration order for determinism.
  std::deque<std::string> frontier;
  for (const Activity& a : activities_) {
    if (indegree[a.name] == 0) frontier.push_back(a.name);
  }
  std::vector<std::string> order;
  while (!frontier.empty()) {
    std::string n = frontier.front();
    frontier.pop_front();
    order.push_back(n);
    for (size_t i : OutgoingControl(n)) {
      const std::string& m = control_[i].to;
      if (--indegree[m] == 0) frontier.push_back(m);
    }
  }
  if (order.size() != activities_.size()) {
    return Status::ValidationError("process " + name_ +
                                   " has a cycle in its control flow");
  }
  return order;
}

bool ProcessDefinition::HasControlPath(const std::string& src,
                                       const std::string& dst) const {
  if (src == dst) return true;
  std::set<std::string> seen{src};
  std::deque<std::string> frontier{src};
  while (!frontier.empty()) {
    std::string n = frontier.front();
    frontier.pop_front();
    for (size_t i : OutgoingControl(n)) {
      const std::string& m = control_[i].to;
      if (m == dst) return true;
      if (seen.insert(m).second) frontier.push_back(m);
    }
  }
  return false;
}

Status DefinitionStore::DeclareProgram(ProgramDeclaration decl) {
  if (decl.name.empty()) {
    return Status::InvalidArgument("program name may not be empty");
  }
  if (programs_.count(decl.name) > 0) {
    return Status::AlreadyExists("program already declared: " + decl.name);
  }
  if (!types_.Has(decl.input_type)) {
    return Status::ValidationError("program " + decl.name +
                                   " references unknown input type " +
                                   decl.input_type);
  }
  if (!types_.Has(decl.output_type)) {
    return Status::ValidationError("program " + decl.name +
                                   " references unknown output type " +
                                   decl.output_type);
  }
  programs_.emplace(decl.name, std::move(decl));
  return Status::OK();
}

Result<const ProgramDeclaration*> DefinitionStore::FindProgram(
    const std::string& name) const {
  auto it = programs_.find(name);
  if (it == programs_.end()) {
    return Status::NotFound("program not declared: " + name);
  }
  return &it->second;
}

std::vector<std::string> DefinitionStore::ProgramNames() const {
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& [name, decl] : programs_) {
    (void)decl;
    out.push_back(name);
  }
  return out;
}

Status DefinitionStore::AddProcess(ProcessDefinition process) {
  auto it = processes_.find(process.name());
  if (it != processes_.end() && it->second.count(process.version()) > 0) {
    return Status::AlreadyExists("process already registered: " +
                                 process.name() + " version " +
                                 std::to_string(process.version()));
  }
  EXO_RETURN_NOT_OK_CTX(ValidateProcess(process, *this),
                        "validating process " + process.name());
  auto [vit, inserted] = processes_[process.name()].emplace(
      process.version(), std::move(process));
  (void)inserted;
  // Compile the navigation plan eagerly: registered definitions are shared
  // read-only across engine threads, so the lazy compile in plan() must
  // never race. Registration is the last single-threaded moment — and the
  // only one with the TypeRegistry at hand, so this is also where every
  // condition is lowered to a slot-bound VM program.
  vit->second.CompilePlan(types_);
  return Status::OK();
}

Result<const ProcessDefinition*> DefinitionStore::FindProcess(
    const std::string& name) const {
  auto it = processes_.find(name);
  if (it == processes_.end() || it->second.empty()) {
    return Status::NotFound("process not registered: " + name);
  }
  return &it->second.rbegin()->second;  // highest version
}

Result<const ProcessDefinition*> DefinitionStore::FindProcessVersion(
    const std::string& name, int version) const {
  auto it = processes_.find(name);
  if (it == processes_.end()) {
    return Status::NotFound("process not registered: " + name);
  }
  auto vit = it->second.find(version);
  if (vit == it->second.end()) {
    return Status::NotFound("process " + name + " has no version " +
                            std::to_string(version));
  }
  return &vit->second;
}

std::vector<int> DefinitionStore::VersionsOf(const std::string& name) const {
  std::vector<int> out;
  auto it = processes_.find(name);
  if (it == processes_.end()) return out;
  for (const auto& [version, p] : it->second) {
    (void)p;
    out.push_back(version);
  }
  return out;
}

std::vector<std::string> DefinitionStore::ProcessNames() const {
  std::vector<std::string> out;
  out.reserve(processes_.size());
  for (const auto& [name, versions] : processes_) {
    (void)versions;
    out.push_back(name);
  }
  return out;
}

Status DefinitionStore::RemoveProcess(const std::string& name) {
  if (processes_.erase(name) == 0) {
    return Status::NotFound("process not registered: " + name);
  }
  return Status::OK();
}

}  // namespace exotica::wf
