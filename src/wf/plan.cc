#include "wf/plan.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string>

#include "codegen/step_jit.h"
#include "expr/compile.h"
#include "wf/process.h"

namespace exotica::wf {

namespace {

/// Caches one shape container per output type while compiling a
/// definition's conditions; activities routinely share types.
class ShapeCache {
 public:
  explicit ShapeCache(const data::TypeRegistry& types) : types_(types) {}

  /// The shape container for `type_name`, or null if the type can't be
  /// instantiated (unknown/recursive — validation would have rejected it,
  /// so this only trips on unvalidated definitions).
  const data::Container* Shape(const std::string& type_name) {
    auto it = shapes_.find(type_name);
    if (it == shapes_.end()) {
      Result<data::Container> c = data::Container::Create(types_, type_name);
      it = shapes_
               .emplace(type_name, c.ok() ? std::make_unique<data::Container>(
                                                std::move(c).value())
                                          : nullptr)
               .first;
    }
    return it->second.get();
  }

 private:
  const data::TypeRegistry& types_;
  std::map<std::string, std::unique_ptr<data::Container>> shapes_;
};

/// Compiles one condition against `shape`, appending the program to
/// `programs`. Returns the program index, or -1 when the condition can't
/// be lowered (the runtime tree-walks it instead).
int32_t CompileCondition(const expr::Condition& cond,
                         const data::Container* shape,
                         std::vector<expr::CompiledCondition>* programs) {
  if (shape == nullptr) return -1;
  Result<expr::CompiledCondition> prog =
      expr::ConditionCompiler::Compile(cond.root(), *shape);
  if (!prog.ok()) return -1;
  programs->push_back(std::move(prog).value());
  return static_cast<int32_t>(programs->size() - 1);
}

}  // namespace

NavigationPlan NavigationPlan::Compile(const ProcessDefinition& def,
                                       const data::TypeRegistry* types) {
  NavigationPlan plan;
  const std::vector<Activity>& acts = def.activities();
  const std::vector<ControlConnector>& control = def.control_connectors();
  const std::vector<DataConnector>& data = def.data_connectors();
  const uint32_t n = static_cast<uint32_t>(acts.size());

  plan.activities_.resize(n);
  for (uint32_t id = 0; id < n; ++id) {
    const Activity& a = acts[id];
    ActivityInfo& info = plan.activities_[id];
    info.manual = a.start_mode == StartMode::kManual;
    info.block = a.is_process();
    info.or_join = a.join == JoinKind::kOr;
    info.trivial_exit = a.exit_condition.is_trivial();
  }

  // Control connectors: resolve endpoints to ids and record each
  // connector's slot within its source/target adjacency list. Adjacency
  // lists are built in connector insertion order, matching the
  // definition's own indexes.
  plan.connectors_.resize(control.size());
  for (uint32_t c = 0; c < control.size(); ++c) {
    auto from = def.ActivityIndex(control[c].from);
    auto to = def.ActivityIndex(control[c].to);
    // Endpoints were validated at AddControlConnector time.
    ConnectorInfo& info = plan.connectors_[c];
    info.from = static_cast<uint32_t>(*from);
    info.to = static_cast<uint32_t>(*to);
    info.is_otherwise = control[c].is_otherwise;
    info.trivial = control[c].condition.is_trivial();
    ActivityInfo& src = plan.activities_[info.from];
    ActivityInfo& dst = plan.activities_[info.to];
    info.out_slot = static_cast<uint32_t>(src.out_control.size());
    info.in_slot = static_cast<uint32_t>(dst.in_control.size());
    src.out_control.push_back(c);
    dst.in_control.push_back(c);
  }
  for (ActivityInfo& info : plan.activities_) {
    info.join_fan_in = static_cast<uint32_t>(info.in_control.size());
  }

  // Lower non-trivial conditions to slot-resolved VM programs. Exit
  // conditions read the activity's own output container; transition
  // conditions read the *source* activity's output container. Anything
  // the compiler can't bind keeps its -1 and tree-walks at runtime.
  if (types != nullptr) {
    ShapeCache shapes(*types);
    for (uint32_t id = 0; id < n; ++id) {
      if (plan.activities_[id].trivial_exit) continue;
      plan.activities_[id].exit_vm =
          CompileCondition(acts[id].exit_condition,
                           shapes.Shape(acts[id].output_type),
                           &plan.vm_programs_);
    }
    for (uint32_t c = 0; c < control.size(); ++c) {
      ConnectorInfo& info = plan.connectors_[c];
      if (info.trivial || info.is_otherwise) continue;
      info.cond_vm =
          CompileCondition(control[c].condition,
                           shapes.Shape(acts[info.from].output_type),
                           &plan.vm_programs_);
    }
  }

  // Flat eval-slot offsets: connector evaluations live in two
  // instance-wide arrays (one alloc each per instance, not two per
  // activity); each activity owns the contiguous range starting at its
  // base.
  for (ActivityInfo& info : plan.activities_) {
    info.in_eval_base = plan.in_eval_total_;
    info.out_eval_base = plan.out_eval_total_;
    plan.in_eval_total_ += static_cast<uint32_t>(info.in_control.size());
    plan.out_eval_total_ += static_cast<uint32_t>(info.out_control.size());
  }
  plan.hot_ =
      HotLayout::Compute(n, plan.in_eval_total_, plan.out_eval_total_);

  // Fuse each activity's outgoing sweep into a straight-line step
  // program: non-otherwise connectors in slot order (the interpreted
  // sweep's first loop), then otherwise connectors in slot order (its
  // second loop), then kEnd. Eval kinds, connector indices, absolute
  // out_evals slots, and condition program ids are all resolved here so
  // the runtime dispatch does no per-connector discovery. The resolver
  // bits ride along: a sweep needs an expr::ContainerResolver only for
  // tree-walked conditions (needs_resolver), or for any condition at all
  // when the engine runs with the condition VM off (has_cond_out).
  for (uint32_t id = 0; id < n; ++id) {
    ActivityInfo& info = plan.activities_[id];
    info.step_base = static_cast<uint32_t>(plan.step_code_.size());
    for (uint32_t slot = 0; slot < info.out_control.size(); ++slot) {
      const uint32_t cidx = info.out_control[slot];
      const ConnectorInfo& ci = plan.connectors_[cidx];
      if (ci.is_otherwise) continue;
      StepInstr si;
      si.cidx = cidx;
      si.out_idx = info.out_eval_base + slot;
      if (ci.trivial) {
        si.op = StepInstr::Op::kTrivial;
      } else if (ci.cond_vm >= 0) {
        si.op = StepInstr::Op::kVm;
        si.prog = ci.cond_vm;
        info.has_cond_out = true;
      } else {
        si.op = StepInstr::Op::kTree;
        info.needs_resolver = true;
        info.has_cond_out = true;
      }
      plan.step_code_.push_back(si);
    }
    for (uint32_t slot = 0; slot < info.out_control.size(); ++slot) {
      const uint32_t cidx = info.out_control[slot];
      if (!plan.connectors_[cidx].is_otherwise) continue;
      StepInstr si;
      si.op = StepInstr::Op::kOtherwise;
      si.cidx = cidx;
      si.out_idx = info.out_eval_base + slot;
      plan.step_code_.push_back(si);
    }
    plan.step_code_.push_back(StepInstr{});  // kEnd
  }

  // Data connectors: per-source fan-out lists plus resolved targets.
  plan.data_.resize(data.size());
  for (uint32_t d = 0; d < data.size(); ++d) {
    const DataConnector& dc = data[d];
    if (dc.from.is_activity()) {
      auto from = def.ActivityIndex(dc.from.activity);
      plan.activities_[*from].out_data.push_back(d);
    } else {
      plan.input_data_.push_back(d);
    }
    if (dc.to.is_activity()) {
      auto to = def.ActivityIndex(dc.to.activity);
      plan.data_[d].to = static_cast<uint32_t>(*to);
    } else {
      plan.data_[d].to = kProcessOutput;
    }
  }

  // Start set: no incoming control, declaration order.
  for (uint32_t id = 0; id < n; ++id) {
    if (plan.activities_[id].in_control.empty()) plan.start_.push_back(id);
  }

  // Topological order: Kahn's algorithm visiting ids in declaration order,
  // byte-identical to ProcessDefinition::TopologicalOrder on a DAG.
  std::vector<uint32_t> indegree(n, 0);
  for (const ConnectorInfo& c : plan.connectors_) ++indegree[c.to];
  std::deque<uint32_t> frontier;
  for (uint32_t id = 0; id < n; ++id) {
    if (indegree[id] == 0) frontier.push_back(id);
  }
  while (!frontier.empty()) {
    uint32_t id = frontier.front();
    frontier.pop_front();
    plan.topo_.push_back(id);
    for (uint32_t c : plan.activities_[id].out_control) {
      uint32_t m = plan.connectors_[c].to;
      if (--indegree[m] == 0) frontier.push_back(m);
    }
  }
  // A cycle leaves topo_ short; registration validates acyclicity, so this
  // only happens for hand-built unvalidated definitions, which never reach
  // the navigator's recovery path (the only consumer of topo_).

  // Name-sorted id list: the iteration order of a name-keyed map.
  plan.by_name_.resize(n);
  for (uint32_t id = 0; id < n; ++id) plan.by_name_[id] = id;
  std::sort(plan.by_name_.begin(), plan.by_name_.end(),
            [&acts](uint32_t a, uint32_t b) {
              return acts[a].name < acts[b].name;
            });

  // Last ladder rung: lower the step programs (and their typed condition
  // programs) to native code. Always attempted — the engine option only
  // gates dispatch — and null on platforms without the emitter.
  plan.native_unit_ = codegen::CompileStepPrograms(plan);

  return plan;
}

}  // namespace exotica::wf
