// Activity: one step of a process (paper §3.2).
//
// An activity is either a *program activity* (a registered program runs
// when the activity runs) or a *process activity* (an entire subprocess —
// the paper's "block" — runs when the activity runs; used for nesting,
// modular design, and loops via exit conditions).

#ifndef EXOTICA_WF_ACTIVITY_H_
#define EXOTICA_WF_ACTIVITY_H_

#include <string>

#include "common/clock.h"
#include "data/types.h"
#include "expr/condition.h"

namespace exotica::wf {

/// \brief Program vs process (block) activity.
enum class ActivityKind : int { kProgram = 0, kProcess = 1 };

/// \brief How an activity leaves the ready state: automatically by the
/// navigator, or manually by a user picking it from a worklist.
enum class StartMode : int { kAutomatic = 0, kManual = 1 };

/// \brief Start condition over incoming control connectors. The decision
/// is made once *all* incoming connectors are evaluated (true, false, or
/// false-by-dead-path): AND starts iff all are true, OR starts iff at
/// least one is true; otherwise the activity is terminated by dead path
/// elimination. Waiting for all evaluations is what lets the paper's
/// Figure-2 compensation block run in reverse execution order.
enum class JoinKind : int { kAnd = 0, kOr = 1 };

/// \brief Static description of one activity.
struct Activity {
  std::string name;
  std::string description;
  ActivityKind kind = ActivityKind::kProgram;

  /// Program activities: name in the program registry.
  std::string program;
  /// Process activities: name of the subprocess in the process registry.
  std::string subprocess;

  /// Container shapes; default to TypeRegistry::kDefaultTypeName (RC:LONG).
  std::string input_type = data::TypeRegistry::kDefaultTypeName;
  std::string output_type = data::TypeRegistry::kDefaultTypeName;

  StartMode start_mode = StartMode::kAutomatic;
  JoinKind join = JoinKind::kAnd;

  /// Exit condition, evaluated over the output container when execution
  /// finishes. False reschedules the activity (paper §3.2) — this is the
  /// loop mechanism, and how retriable subtransactions are modelled.
  expr::Condition exit_condition;

  /// Staff assignment: role whose members may execute this activity.
  /// Empty means unassigned (automatic activities run as "system").
  std::string role;

  /// Notify this role if the activity sits unfinished past the deadline
  /// (paper §3.3: "who must be notified if the activity is not executed
  /// within a certain period of time"). 0 disables.
  Micros notify_after_micros = 0;
  std::string notify_role;

  bool is_program() const { return kind == ActivityKind::kProgram; }
  bool is_process() const { return kind == ActivityKind::kProcess; }
};

/// \brief Runtime state of an activity instance (paper §3.2: ready,
/// running, finished, terminated; plus the never-started "waiting" and the
/// dead-path "dead" refinement of terminated).
enum class ActivityState : int {
  kWaiting = 0,     ///< start condition not yet met
  kReady = 1,       ///< eligible to run (on worklists if manual)
  kRunning = 2,     ///< program / subprocess executing
  kFinished = 3,    ///< execution completed; exit condition pending
  kTerminated = 4,  ///< completed with exit condition satisfied
  kDead = 5,        ///< terminated via dead path elimination; never ran
};

const char* ActivityStateName(ActivityState s);

}  // namespace exotica::wf

#endif  // EXOTICA_WF_ACTIVITY_H_
