#include "wf/validate.h"

#include <map>

#include "common/strings.h"
#include "data/container.h"
#include "wf/process.h"

namespace exotica::wf {

namespace {

Status CheckConditionIdentifiers(const expr::Condition& condition,
                                 const data::Container& shape,
                                 const std::string& where) {
  for (const std::string& id : condition.Identifiers()) {
    if (!shape.HasPath(id)) {
      return Status::ValidationError(
          StrFormat("%s references '%s' which is not a member of container "
                    "type %s",
                    where.c_str(), id.c_str(), shape.type_name().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateProcess(const ProcessDefinition& process,
                       const DefinitionStore& store) {
  const data::TypeRegistry& types = store.types();

  // 1. Basic shape.
  if (process.name().empty()) {
    return Status::ValidationError("process name may not be empty");
  }
  if (process.activities().empty()) {
    return Status::ValidationError("process " + process.name() +
                                   " has no activities");
  }

  // 2. Acyclicity.
  EXO_RETURN_NOT_OK(process.TopologicalOrder().status());

  // 3. Container types exist. Cache one container per type as the shape
  //    oracle for condition / mapping checks.
  std::map<std::string, data::Container> shapes;
  auto shape_of = [&](const std::string& type_name)
      -> Result<const data::Container*> {
    auto it = shapes.find(type_name);
    if (it == shapes.end()) {
      EXO_ASSIGN_OR_RETURN(data::Container c,
                           data::Container::Create(types, type_name));
      it = shapes.emplace(type_name, std::move(c)).first;
    }
    return &it->second;
  };

  EXO_RETURN_NOT_OK_CTX(shape_of(process.input_type()).status(),
                        "process input container");
  EXO_RETURN_NOT_OK_CTX(shape_of(process.output_type()).status(),
                        "process output container");

  for (const Activity& a : process.activities()) {
    EXO_RETURN_NOT_OK_CTX(shape_of(a.input_type).status(),
                          "activity " + a.name + " input container");
    EXO_RETURN_NOT_OK_CTX(shape_of(a.output_type).status(),
                          "activity " + a.name + " output container");

    // 4/5. Referenced program or subprocess exists with matching shapes.
    if (a.is_program()) {
      if (a.program.empty()) {
        return Status::ValidationError("program activity " + a.name +
                                       " names no program");
      }
      EXO_ASSIGN_OR_RETURN(const ProgramDeclaration* decl,
                           store.FindProgram(a.program));
      if (decl->input_type != a.input_type ||
          decl->output_type != a.output_type) {
        return Status::ValidationError(StrFormat(
            "activity %s containers (%s/%s) do not match program %s (%s/%s)",
            a.name.c_str(), a.input_type.c_str(), a.output_type.c_str(),
            a.program.c_str(), decl->input_type.c_str(),
            decl->output_type.c_str()));
      }
    } else {
      if (a.subprocess.empty()) {
        return Status::ValidationError("process activity " + a.name +
                                       " names no subprocess");
      }
      if (a.subprocess == process.name()) {
        return Status::ValidationError("process activity " + a.name +
                                       " embeds its own process recursively");
      }
      EXO_ASSIGN_OR_RETURN(const ProcessDefinition* sub,
                           store.FindProcess(a.subprocess));
      if (sub->input_type() != a.input_type ||
          sub->output_type() != a.output_type) {
        return Status::ValidationError(StrFormat(
            "activity %s containers (%s/%s) do not match subprocess %s (%s/%s)",
            a.name.c_str(), a.input_type.c_str(), a.output_type.c_str(),
            a.subprocess.c_str(), sub->input_type().c_str(),
            sub->output_type().c_str()));
      }
    }

    // 7. Exit condition identifiers.
    if (!a.exit_condition.is_trivial()) {
      EXO_ASSIGN_OR_RETURN(const data::Container* out_shape,
                           shape_of(a.output_type));
      EXO_RETURN_NOT_OK(CheckConditionIdentifiers(
          a.exit_condition, *out_shape,
          "exit condition of activity " + a.name));
    }
  }

  // 6 & 8. Control connectors.
  std::map<std::string, int> otherwise_count;
  std::map<std::string, int> conditioned_count;
  for (const ControlConnector& c : process.control_connectors()) {
    EXO_ASSIGN_OR_RETURN(const Activity* src, process.FindActivity(c.from));
    if (c.is_otherwise) {
      ++otherwise_count[c.from];
    } else {
      if (!c.condition.is_trivial()) ++conditioned_count[c.from];
      EXO_ASSIGN_OR_RETURN(const data::Container* out_shape,
                           shape_of(src->output_type));
      EXO_RETURN_NOT_OK(CheckConditionIdentifiers(
          c.condition, *out_shape,
          "transition condition of connector " + c.from + " -> " + c.to));
    }
  }
  for (const auto& [from, n] : otherwise_count) {
    if (n > 1) {
      return Status::ValidationError(
          "activity " + from + " has more than one otherwise-connector");
    }
    if (conditioned_count[from] == 0) {
      return Status::ValidationError(
          "otherwise-connector out of " + from +
          " requires at least one conditioned sibling connector");
    }
  }

  // 9. Data connectors.
  for (const DataConnector& d : process.data_connectors()) {
    // Resolve source/target shapes.
    const data::Container* from_shape = nullptr;
    const data::Container* to_shape = nullptr;
    if (d.from.is_activity()) {
      EXO_ASSIGN_OR_RETURN(const Activity* a, process.FindActivity(d.from.activity));
      EXO_ASSIGN_OR_RETURN(from_shape, shape_of(a->output_type));
    } else {
      EXO_ASSIGN_OR_RETURN(from_shape, shape_of(process.input_type()));
    }
    if (d.to.is_activity()) {
      EXO_ASSIGN_OR_RETURN(const Activity* a, process.FindActivity(d.to.activity));
      EXO_ASSIGN_OR_RETURN(to_shape, shape_of(a->input_type));
    } else {
      EXO_ASSIGN_OR_RETURN(to_shape, shape_of(process.output_type()));
    }
    EXO_RETURN_NOT_OK_CTX(
        d.mapping.Validate(*from_shape, *to_shape),
        "data connector " + d.from.ToString() + " -> " + d.to.ToString());

    // Data flow must follow control flow for activity-to-activity edges.
    if (d.from.is_activity() && d.to.is_activity() &&
        !process.HasControlPath(d.from.activity, d.to.activity)) {
      return Status::ValidationError(
          "data connector " + d.from.activity + " -> " + d.to.activity +
          " has no corresponding control path");
    }
    if (d.mapping.empty()) {
      return Status::ValidationError(
          "data connector " + d.from.ToString() + " -> " + d.to.ToString() +
          " carries no field mappings");
    }
  }

  return Status::OK();
}

}  // namespace exotica::wf
