// ProcessDefinition: the static description of a workflow process — an
// acyclic directed graph of activities joined by control and data
// connectors (paper §3.2).

#ifndef EXOTICA_WF_PROCESS_H_
#define EXOTICA_WF_PROCESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wf/activity.h"
#include "wf/connector.h"
#include "wf/plan.h"

namespace exotica::wf {

/// \brief An immutable-after-validation process template.
///
/// Use ProcessBuilder to construct one; direct mutation is available for
/// the FDL importer and tests. Validate() (see validate.h) must pass
/// before the definition is registered for execution.
class ProcessDefinition {
 public:
  ProcessDefinition() = default;
  explicit ProcessDefinition(std::string name, int version = 1)
      : name_(std::move(name)), version_(version) {}

  const std::string& name() const { return name_; }
  int version() const { return version_; }
  const std::string& description() const { return description_; }
  void set_description(std::string d) { description_ = std::move(d); }

  /// Shape of the process input/output containers.
  const std::string& input_type() const { return input_type_; }
  const std::string& output_type() const { return output_type_; }
  void set_input_type(std::string t) { input_type_ = std::move(t); }
  void set_output_type(std::string t) { output_type_ = std::move(t); }

  // --- construction -------------------------------------------------------

  Status AddActivity(Activity activity);
  Status AddControlConnector(ControlConnector connector);
  Status AddDataConnector(DataConnector connector);

  // --- lookups ------------------------------------------------------------

  const std::vector<Activity>& activities() const { return activities_; }
  const std::vector<ControlConnector>& control_connectors() const {
    return control_;
  }
  const std::vector<DataConnector>& data_connectors() const { return data_; }

  bool HasActivity(const std::string& name) const {
    return index_.count(name) > 0;
  }
  Result<const Activity*> FindActivity(const std::string& name) const;

  /// Dense activity id (index into activities()) for `name`. The runtime
  /// resolves names to ids once at API boundaries and navigates on ids.
  Result<size_t> ActivityIndex(const std::string& name) const;

  /// The compiled navigation plan. Compiled lazily on first use and cached;
  /// DefinitionStore::AddProcess compiles eagerly so registered
  /// definitions can be shared across engine threads without races. Any
  /// Add* mutation invalidates the cache.
  const NavigationPlan& plan() const;

  /// Recompiles the plan with condition programs bound against `types`
  /// (the registry the definition was validated under). Called by
  /// DefinitionStore::AddProcess; the lazy plan() path never binds
  /// conditions and the runtime tree-walks them instead.
  void CompilePlan(const data::TypeRegistry& types) const;

  /// Indices into control_connectors() with the given source / target.
  std::vector<size_t> OutgoingControl(const std::string& activity) const;
  std::vector<size_t> IncomingControl(const std::string& activity) const;

  /// Indices into data_connectors() whose target is the given endpoint.
  std::vector<size_t> IncomingData(const DataEndpoint& endpoint) const;
  std::vector<size_t> OutgoingData(const DataEndpoint& endpoint) const;

  /// Activities with no incoming control connectors — the paper's start
  /// activities, set ready when the process starts.
  std::vector<std::string> StartActivities() const;

  /// Topological order of activity names. ValidationError if cyclic.
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// True if a directed control path from `src` to `dst` exists.
  bool HasControlPath(const std::string& src, const std::string& dst) const;

 private:
  std::string name_;
  int version_ = 1;
  std::string description_;
  std::string input_type_ = data::TypeRegistry::kDefaultTypeName;
  std::string output_type_ = data::TypeRegistry::kDefaultTypeName;

  static std::string DataKey(const DataEndpoint& endpoint);

  std::vector<Activity> activities_;
  std::map<std::string, size_t> index_;
  std::vector<ControlConnector> control_;
  std::vector<DataConnector> data_;

  // Adjacency indexes, maintained by the Add* methods so topology queries
  // are O(degree) instead of O(edges) — dead path elimination sweeps and
  // the navigator hit these constantly.
  std::map<std::string, std::vector<size_t>> control_out_;
  std::map<std::string, std::vector<size_t>> control_in_;
  std::map<std::string, std::vector<size_t>> data_out_;
  std::map<std::string, std::vector<size_t>> data_in_;

  // Cached compiled plan. Index-based (no pointers into this object), so
  // copies may share it. Mutable: plan() is a const accessor compiling on
  // first use.
  mutable std::shared_ptr<const NavigationPlan> plan_;
};

/// \brief Declaration of an executable program (definition side).
///
/// The runtime binds these names to callables in its ProgramRegistry;
/// the definition layer only knows name and container shapes, which is
/// what FlowMark's "program registration" records (paper §3.3: "once a
/// program is registered it can be invoked from any activity").
struct ProgramDeclaration {
  std::string name;
  std::string description;
  std::string input_type = data::TypeRegistry::kDefaultTypeName;
  std::string output_type = data::TypeRegistry::kDefaultTypeName;
};

/// \brief Holds every definition needed to execute processes: structure
/// types, program declarations, and process templates.
class DefinitionStore {
 public:
  data::TypeRegistry& types() { return types_; }
  const data::TypeRegistry& types() const { return types_; }

  Status DeclareProgram(ProgramDeclaration decl);
  bool HasProgram(const std::string& name) const {
    return programs_.count(name) > 0;
  }
  Result<const ProgramDeclaration*> FindProgram(const std::string& name) const;
  std::vector<std::string> ProgramNames() const;

  /// Registers a process under its (name, version) pair — the paper's
  /// §3.2 meta-model gives every process "a name, version number, ...".
  /// The definition must pass ValidateProcess (see validate.h) against
  /// this store. Registering the same (name, version) twice fails;
  /// registering a higher version makes it the default for new instances
  /// while in-flight instances stay pinned to theirs.
  Status AddProcess(ProcessDefinition process);
  bool HasProcess(const std::string& name) const {
    return processes_.count(name) > 0;
  }
  /// Latest registered version of `name`.
  Result<const ProcessDefinition*> FindProcess(const std::string& name) const;
  /// A specific version.
  Result<const ProcessDefinition*> FindProcessVersion(const std::string& name,
                                                      int version) const;
  /// Registered versions of `name`, ascending; empty if unknown.
  std::vector<int> VersionsOf(const std::string& name) const;
  std::vector<std::string> ProcessNames() const;

  /// Removes every version of a process (used by tests re-importing
  /// definitions).
  Status RemoveProcess(const std::string& name);

 private:
  data::TypeRegistry types_;
  std::map<std::string, ProgramDeclaration> programs_;
  /// name → version → definition.
  std::map<std::string, std::map<int, ProcessDefinition>> processes_;
};

}  // namespace exotica::wf

#endif  // EXOTICA_WF_PROCESS_H_
