// ProcessBuilder: fluent construction of process definitions.
//
//   ProcessBuilder b(store, "BookTrip");
//   b.Program("ReserveFlight", "reserve_flight").ExitWhen("RC = 0")
//    .Program("ReserveHotel", "reserve_hotel")
//    .Connect("ReserveFlight", "ReserveHotel", "RC = 0")
//    .MapData("ReserveFlight", "ReserveHotel", {{"RC", "RC"}});
//   auto process = b.Build();
//
// Errors accumulate: the first failure is remembered and surfaces from
// Build()/Register(); intermediate calls after a failure are no-ops.

#ifndef EXOTICA_WF_BUILDER_H_
#define EXOTICA_WF_BUILDER_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "wf/process.h"

namespace exotica::wf {

/// \brief Fluent builder for a ProcessDefinition.
class ProcessBuilder {
 public:
  /// `store` provides types/programs/subprocesses for validation.
  ProcessBuilder(DefinitionStore* store, std::string process_name,
                 int version = 1);

  ProcessBuilder& Description(std::string text);
  ProcessBuilder& InputType(std::string type_name);
  ProcessBuilder& OutputType(std::string type_name);

  /// Adds a program activity; subsequent per-activity modifiers apply to it.
  ProcessBuilder& Program(std::string activity_name, std::string program_name);

  /// Adds a process (block) activity.
  ProcessBuilder& Block(std::string activity_name, std::string subprocess_name);

  // --- modifiers for the most recently added activity ---------------------

  ProcessBuilder& WithDescription(std::string text);
  ProcessBuilder& Manual();
  ProcessBuilder& Role(std::string role_name);
  ProcessBuilder& OrJoin();
  /// Compiles and attaches an exit condition.
  ProcessBuilder& ExitWhen(std::string condition_source);
  /// Overrides the activity's container types (defaults come from the
  /// program / subprocess declaration).
  ProcessBuilder& Containers(std::string input_type, std::string output_type);
  ProcessBuilder& NotifyAfter(Micros deadline, std::string role_name);

  // --- edges ---------------------------------------------------------------

  /// Control connector; empty condition = always-true.
  ProcessBuilder& Connect(const std::string& from, const std::string& to,
                          std::string condition_source = "");

  /// Otherwise-connector: fires iff all conditioned siblings were false.
  ProcessBuilder& Otherwise(const std::string& from, const std::string& to);

  using FieldPairs = std::vector<std::pair<std::string, std::string>>;

  /// Activity-output → activity-input data connector.
  ProcessBuilder& MapData(const std::string& from, const std::string& to,
                          const FieldPairs& fields);

  /// Process-input → activity-input data connector.
  ProcessBuilder& MapFromInput(const std::string& to, const FieldPairs& fields);

  /// Activity-output → process-output data connector.
  ProcessBuilder& MapToOutput(const std::string& from, const FieldPairs& fields);

  // --- terminal operations --------------------------------------------------

  /// Validates and returns the definition (not registered).
  Result<ProcessDefinition> Build();

  /// Validates and registers the definition in the store.
  Status Register();

 private:
  Activity* last_activity();
  void Fail(Status status);
  bool failed() const { return !status_.ok(); }

  DefinitionStore* store_;
  ProcessDefinition process_;
  Status status_;
  bool have_activity_ = false;
};

}  // namespace exotica::wf

#endif  // EXOTICA_WF_BUILDER_H_
