// Tokens of the condition expression language.

#ifndef EXOTICA_EXPR_TOKEN_H_
#define EXOTICA_EXPR_TOKEN_H_

#include <string>

namespace exotica::expr {

enum class TokenKind : int {
  kEnd,
  kIdentifier,   // RC, State_1, Order.Total
  kLongLit,      // 42
  kFloatLit,     // 3.5
  kStringLit,    // "abc"
  kTrue,         // TRUE
  kFalse,        // FALSE
  kAnd,          // AND
  kOr,           // OR
  kNot,          // NOT
  kEq,           // =
  kNeq,          // <>
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kPlus,         // +
  kMinus,        // -
  kStar,         // *
  kSlash,        // /
  kPercent,      // %
  kLParen,       // (
  kRParen,       // )
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier spelling / string payload
  int64_t long_value = 0;
  double float_value = 0.0;
  size_t offset = 0;     // byte offset into the source, for error messages
};

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_TOKEN_H_
