#include "expr/compile.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "expr/eval.h"

namespace exotica::expr {
namespace {

using Op = CompiledCondition::Op;
using Instr = CompiledCondition::Instr;
using TOp = CompiledCondition::TOp;
using TInstr = CompiledCondition::TInstr;
using TCell = CompiledCondition::TCell;
using data::ScalarType;

/// Resolver for compile-time folding of identifier-free subtrees. Never
/// actually invoked — folding is only attempted when the subtree contains
/// no identifiers.
class NoIdentifierResolver : public ValueResolver {
 public:
  Result<data::Value> Resolve(const std::string& name) const override {
    return Status::Internal("constant fold resolved identifier: " + name);
  }
};

bool HasIdentifiers(const Node& node) {
  switch (node.kind) {
    case NodeKind::kLiteral:
      return false;
    case NodeKind::kIdentifier:
      return true;
    case NodeKind::kUnary:
      return HasIdentifiers(*node.lhs);
    case NodeKind::kBinary:
      return HasIdentifiers(*node.lhs) || HasIdentifiers(*node.rhs);
  }
  return true;
}

/// Static type lattice of the typing pass: kNone means "this subtree
/// cannot be monomorphized" (string operands, operations whose very
/// execution would be a runtime type error, null literals). kNone
/// anywhere poisons the whole typed program; the generic one still runs.
enum class STy : uint8_t { kNone, kLong, kFloat, kBool };

STy STyOf(ScalarType t) {
  switch (t) {
    case ScalarType::kLong: return STy::kLong;
    case ScalarType::kFloat: return STy::kFloat;
    case ScalarType::kBool: return STy::kBool;
    default: return STy::kNone;
  }
}

}  // namespace

namespace internal {

/// Lowers one AST into a CompiledCondition. Two instruction streams are
/// emitted in a single walk: the generic program (always), and the typed
/// monomorphic program (as long as every subtree types statically against
/// the shape's declared member scalar types). The typed stream mirrors
/// the generic one construct for construct — same constant folds, same
/// short-circuit structure — so the two cannot diverge observably; when
/// any construct fails to type, the typed stream is abandoned and only
/// the generic program survives.
class ConditionEmitter {
 public:
  explicit ConditionEmitter(const data::Container& shape) : shape_(shape) {}

  Status Emit(const Node& node, STy* ty) {
    // Fold identifier-free subtrees that evaluate cleanly. Subtrees whose
    // evaluation errors (1/0, "a" + 1) are emitted structurally so the
    // runtime reproduces the tree-walk's error, message and all.
    if (!HasIdentifiers(node)) {
      Result<data::Value> folded = expr::Evaluate(node, NoIdentifierResolver());
      if (folded.ok()) {
        *ty = PushConst(std::move(folded).value());
        return Status::OK();
      }
    }
    switch (node.kind) {
      case NodeKind::kLiteral:
        *ty = PushConst(node.literal);
        return Status::OK();
      case NodeKind::kIdentifier:
        return EmitLoad(node, ty);
      case NodeKind::kUnary: {
        STy operand = STy::kNone;
        EXO_RETURN_NOT_OK(Emit(*node.lhs, &operand));
        if (node.unary_op == UnaryOp::kNot) {
          prog_.code_.push_back(Instr{Op::kNot});
          if (operand == STy::kBool) {
            Typed(TOp::kNotB);
            *ty = STy::kBool;
          } else {
            *ty = FailTyped();
          }
        } else {
          prog_.code_.push_back(Instr{Op::kNeg});
          if (operand == STy::kLong) {
            Typed(TOp::kNegI64);
            *ty = STy::kLong;
          } else if (operand == STy::kFloat) {
            Typed(TOp::kNegF64);
            *ty = STy::kFloat;
          } else {
            *ty = FailTyped();
          }
        }
        return Status::OK();
      }
      case NodeKind::kBinary:
        return EmitBinary(node, ty);
    }
    return Status::Internal("unknown expression node kind");
  }

  Result<CompiledCondition> Finish(const Node& root, STy root_ty) {
    if (prog_.max_stack_ > CompiledCondition::kMaxStack) {
      return Status::Unsupported("condition needs " +
                                 std::to_string(prog_.max_stack_) +
                                 " value-stack slots");
    }
    prog_.source_ = root.ToString();
    prog_.bound_type_ = shape_.type_name();
    if (typed_ok_ && root_ty != STy::kNone && !tcode_.empty()) {
      prog_.typed_code_ = std::move(tcode_);
      prog_.tconsts_ = std::move(tconsts_);
      switch (root_ty) {
        case STy::kLong: prog_.typed_result_ = ScalarType::kLong; break;
        case STy::kFloat: prog_.typed_result_ = ScalarType::kFloat; break;
        case STy::kBool: prog_.typed_result_ = ScalarType::kBool; break;
        default: break;
      }
    }
    return std::move(prog_);
  }

 private:
  void Grow(uint32_t pushed) {
    depth_ += pushed;
    prog_.max_stack_ = std::max(prog_.max_stack_, depth_);
  }

  // --- typed-stream helpers (no-ops once the typing pass has failed) ----

  STy FailTyped() {
    typed_ok_ = false;
    return STy::kNone;
  }

  void Typed(TOp op, uint32_t a = 0, uint32_t b = 0) {
    if (typed_ok_) tcode_.push_back(TInstr{op, a, b});
  }

  void TypedConst(TOp op, TCell cell) {
    if (!typed_ok_) return;
    tcode_.push_back(TInstr{op, static_cast<uint32_t>(tconsts_.size())});
    tconsts_.push_back(cell);
  }

  /// Widens a long operand of a mixed/double-compared binary op. `under`
  /// converts the lhs (one below the top of stack), emitted after both
  /// operands are on the stack.
  void Widen(bool under) {
    Typed(under ? TOp::kI64ToF64Under : TOp::kI64ToF64);
  }

  STy PushConst(data::Value v) {
    prog_.code_.push_back(
        Instr{Op::kConst, static_cast<uint32_t>(prog_.consts_.size())});
    STy ty;
    TCell cell;
    switch (v.type()) {
      case ScalarType::kLong:
        cell.i = v.as_long();
        TypedConst(TOp::kConstI64, cell);
        ty = STy::kLong;
        break;
      case ScalarType::kFloat:
        cell.f = v.as_float();
        TypedConst(TOp::kConstF64, cell);
        ty = STy::kFloat;
        break;
      case ScalarType::kBool:
        cell.b = v.as_bool();
        TypedConst(TOp::kConstB, cell);
        ty = STy::kBool;
        break;
      default:  // strings (and the unreachable null literal) stay generic
        ty = FailTyped();
        break;
    }
    prog_.consts_.push_back(std::move(v));
    Grow(1);
    return ty;
  }

  Status EmitLoad(const Node& node, STy* ty) {
    uint32_t slot = shape_.SlotIndex(node.identifier);
    if (slot == data::Container::kNoSlot) {
      return Status::Unsupported("condition references " + node.identifier +
                                 ", which container type " +
                                 shape_.type_name() + " does not declare");
    }
    auto [it, inserted] =
        name_pool_.emplace(node.identifier, prog_.names_.size());
    if (inserted) prog_.names_.push_back(node.identifier);
    prog_.code_.push_back(Instr{Op::kLoad, slot, it->second});
    switch (STyOf(shape_.SlotType(slot))) {
      case STy::kLong:
        Typed(TOp::kLoadI64, slot, it->second);
        *ty = STy::kLong;
        break;
      case STy::kFloat:
        Typed(TOp::kLoadF64, slot, it->second);
        *ty = STy::kFloat;
        break;
      case STy::kBool:
        Typed(TOp::kLoadB, slot, it->second);
        *ty = STy::kBool;
        break;
      default:  // string members keep the generic program
        *ty = FailTyped();
        break;
    }
    prog_.min_slots_ = std::max(prog_.min_slots_, slot + 1);
    Grow(1);
    return Status::OK();
  }

  Status EmitBinary(const Node& node, STy* ty) {
    if (node.binary_op == BinaryOp::kAnd || node.binary_op == BinaryOp::kOr) {
      const bool is_and = node.binary_op == BinaryOp::kAnd;
      STy lty = STy::kNone;
      EXO_RETURN_NOT_OK(Emit(*node.lhs, &lty));
      --depth_;  // the jump pops the lhs...
      size_t jump_at = prog_.code_.size();
      prog_.code_.push_back(Instr{is_and ? Op::kAndJump : Op::kOrJump});
      // Typed stream: the jump needs a statically boolean lhs (a non-bool
      // would be the generic program's runtime type error).
      size_t tjump_at = 0;
      bool typed_jump = typed_ok_ && lty == STy::kBool;
      if (typed_jump) {
        tjump_at = tcode_.size();
        tcode_.push_back(
            TInstr{is_and ? TOp::kAndJumpFalse : TOp::kOrJumpTrue});
      } else {
        FailTyped();
      }
      STy rty = STy::kNone;
      EXO_RETURN_NOT_OK(Emit(*node.rhs, &rty));
      prog_.code_.push_back(Instr{Op::kRequireBool, is_and ? 0u : 1u});
      // ...and the short-circuit path re-pushes the decided value, so both
      // paths leave exactly one result (rhs depth already counted it).
      prog_.code_[jump_at].a = static_cast<uint32_t>(prog_.code_.size());
      if (typed_jump && typed_ok_ && rty == STy::kBool) {
        // No typed RequireBool: the rhs is statically boolean.
        tcode_[tjump_at].a = static_cast<uint32_t>(tcode_.size());
        *ty = STy::kBool;
      } else {
        *ty = FailTyped();
      }
      return Status::OK();
    }
    STy lty = STy::kNone;
    STy rty = STy::kNone;
    EXO_RETURN_NOT_OK(Emit(*node.lhs, &lty));
    EXO_RETURN_NOT_OK(Emit(*node.rhs, &rty));
    Op op;
    switch (node.binary_op) {
      case BinaryOp::kEq: op = Op::kEq; break;
      case BinaryOp::kNeq: op = Op::kNeq; break;
      case BinaryOp::kLt: op = Op::kLt; break;
      case BinaryOp::kLe: op = Op::kLe; break;
      case BinaryOp::kGt: op = Op::kGt; break;
      case BinaryOp::kGe: op = Op::kGe; break;
      case BinaryOp::kAdd: op = Op::kAdd; break;
      case BinaryOp::kSub: op = Op::kSub; break;
      case BinaryOp::kMul: op = Op::kMul; break;
      case BinaryOp::kDiv: op = Op::kDiv; break;
      case BinaryOp::kMod: op = Op::kMod; break;
      default:
        return Status::Internal("unexpected binary operator");
    }
    prog_.code_.push_back(Instr{op});
    *ty = EmitTypedBinary(node.binary_op, lty, rty);
    --depth_;  // two operands become one result
    return Status::OK();
  }

  /// Typed lowering of one binary operator given both operand types; the
  /// operands are already on the typed stack. Returns the result type, or
  /// kNone (poisoning the typed program) when the pair doesn't type —
  /// including pairs whose execution would be the generic program's
  /// runtime type error (string ordering, % on floats, AND on longs).
  STy EmitTypedBinary(BinaryOp op, STy lty, STy rty) {
    if (!typed_ok_ || lty == STy::kNone || rty == STy::kNone) {
      return FailTyped();
    }
    const bool l_num = lty == STy::kLong || lty == STy::kFloat;
    const bool r_num = rty == STy::kLong || rty == STy::kFloat;
    const bool both_long = lty == STy::kLong && rty == STy::kLong;
    switch (op) {
      case BinaryOp::kEq:
      case BinaryOp::kNeq: {
        if (lty == STy::kBool && rty == STy::kBool) {
          Typed(op == BinaryOp::kEq ? TOp::kCmpEqB : TOp::kCmpNeB);
          return STy::kBool;
        }
        if (!l_num || !r_num) return FailTyped();
        if (both_long) {
          Typed(op == BinaryOp::kEq ? TOp::kCmpEqI64 : TOp::kCmpNeI64);
        } else {
          if (lty == STy::kLong) Widen(/*under=*/true);
          if (rty == STy::kLong) Widen(/*under=*/false);
          Typed(op == BinaryOp::kEq ? TOp::kCmpEqF64 : TOp::kCmpNeF64);
        }
        return STy::kBool;
      }
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        if (!l_num || !r_num) return FailTyped();  // string ordering: generic
        TOp base;
        switch (op) {
          case BinaryOp::kLt: base = both_long ? TOp::kCmpLtI64 : TOp::kCmpLtF64; break;
          case BinaryOp::kLe: base = both_long ? TOp::kCmpLeI64 : TOp::kCmpLeF64; break;
          case BinaryOp::kGt: base = both_long ? TOp::kCmpGtI64 : TOp::kCmpGtF64; break;
          default:            base = both_long ? TOp::kCmpGeI64 : TOp::kCmpGeF64; break;
        }
        if (!both_long) {
          if (lty == STy::kLong) Widen(/*under=*/true);
          if (rty == STy::kLong) Widen(/*under=*/false);
        }
        Typed(base);
        return STy::kBool;
      }
      case BinaryOp::kMod:
        if (!both_long) return FailTyped();  // kernel: '%' requires longs
        Typed(TOp::kModI64);
        return STy::kLong;
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv: {
        if (!l_num || !r_num) return FailTyped();
        if (both_long) {
          switch (op) {
            case BinaryOp::kAdd: Typed(TOp::kAddI64); break;
            case BinaryOp::kSub: Typed(TOp::kSubI64); break;
            case BinaryOp::kMul: Typed(TOp::kMulI64); break;
            default: Typed(TOp::kDivI64); break;
          }
          return STy::kLong;
        }
        if (lty == STy::kLong) Widen(/*under=*/true);
        if (rty == STy::kLong) Widen(/*under=*/false);
        switch (op) {
          case BinaryOp::kAdd: Typed(TOp::kAddF64); break;
          case BinaryOp::kSub: Typed(TOp::kSubF64); break;
          case BinaryOp::kMul: Typed(TOp::kMulF64); break;
          default: Typed(TOp::kDivF64); break;
        }
        return STy::kFloat;
      }
      default:
        return FailTyped();
    }
  }

  const data::Container& shape_;
  CompiledCondition prog_;
  std::map<std::string, uint32_t> name_pool_;
  uint32_t depth_ = 0;
  /// Typed stream under construction; abandoned on the first construct
  /// the typing pass cannot prove.
  bool typed_ok_ = true;
  std::vector<TInstr> tcode_;
  std::vector<TCell> tconsts_;
};

}  // namespace internal

Result<CompiledCondition> ConditionCompiler::Compile(
    const Node* root, const data::Container& shape) {
  if (root == nullptr) return CompiledCondition();
  internal::ConditionEmitter emitter(shape);
  STy root_ty = STy::kNone;
  EXO_RETURN_NOT_OK(emitter.Emit(*root, &root_ty));
  return emitter.Finish(*root, root_ty);
}

}  // namespace exotica::expr
