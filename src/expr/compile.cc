#include "expr/compile.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "expr/eval.h"

namespace exotica::expr {
namespace {

using Op = CompiledCondition::Op;
using Instr = CompiledCondition::Instr;

/// Resolver for compile-time folding of identifier-free subtrees. Never
/// actually invoked — folding is only attempted when the subtree contains
/// no identifiers.
class NoIdentifierResolver : public ValueResolver {
 public:
  Result<data::Value> Resolve(const std::string& name) const override {
    return Status::Internal("constant fold resolved identifier: " + name);
  }
};

bool HasIdentifiers(const Node& node) {
  switch (node.kind) {
    case NodeKind::kLiteral:
      return false;
    case NodeKind::kIdentifier:
      return true;
    case NodeKind::kUnary:
      return HasIdentifiers(*node.lhs);
    case NodeKind::kBinary:
      return HasIdentifiers(*node.lhs) || HasIdentifiers(*node.rhs);
  }
  return true;
}

}  // namespace

namespace internal {

class ConditionEmitter {
 public:
  explicit ConditionEmitter(const data::Container& shape) : shape_(shape) {}

  Status Emit(const Node& node) {
    // Fold identifier-free subtrees that evaluate cleanly. Subtrees whose
    // evaluation errors (1/0, "a" + 1) are emitted structurally so the
    // runtime reproduces the tree-walk's error, message and all.
    if (!HasIdentifiers(node)) {
      Result<data::Value> folded = expr::Evaluate(node, NoIdentifierResolver());
      if (folded.ok()) {
        PushConst(std::move(folded).value());
        return Status::OK();
      }
    }
    switch (node.kind) {
      case NodeKind::kLiteral:
        PushConst(node.literal);
        return Status::OK();
      case NodeKind::kIdentifier:
        return EmitLoad(node);
      case NodeKind::kUnary: {
        EXO_RETURN_NOT_OK(Emit(*node.lhs));
        prog_.code_.push_back(
            Instr{node.unary_op == UnaryOp::kNot ? Op::kNot : Op::kNeg});
        return Status::OK();
      }
      case NodeKind::kBinary:
        return EmitBinary(node);
    }
    return Status::Internal("unknown expression node kind");
  }

  Result<CompiledCondition> Finish(const Node& root) {
    if (prog_.max_stack_ > CompiledCondition::kMaxStack) {
      return Status::Unsupported("condition needs " +
                                 std::to_string(prog_.max_stack_) +
                                 " value-stack slots");
    }
    prog_.source_ = root.ToString();
    prog_.bound_type_ = shape_.type_name();
    return std::move(prog_);
  }

 private:
  void Grow(uint32_t pushed) {
    depth_ += pushed;
    prog_.max_stack_ = std::max(prog_.max_stack_, depth_);
  }

  void PushConst(data::Value v) {
    prog_.code_.push_back(
        Instr{Op::kConst, static_cast<uint32_t>(prog_.consts_.size())});
    prog_.consts_.push_back(std::move(v));
    Grow(1);
  }

  Status EmitLoad(const Node& node) {
    uint32_t slot = shape_.SlotIndex(node.identifier);
    if (slot == data::Container::kNoSlot) {
      return Status::Unsupported("condition references " + node.identifier +
                                 ", which container type " +
                                 shape_.type_name() + " does not declare");
    }
    auto [it, inserted] =
        name_pool_.emplace(node.identifier, prog_.names_.size());
    if (inserted) prog_.names_.push_back(node.identifier);
    prog_.code_.push_back(Instr{Op::kLoad, slot, it->second});
    prog_.min_slots_ = std::max(prog_.min_slots_, slot + 1);
    Grow(1);
    return Status::OK();
  }

  Status EmitBinary(const Node& node) {
    if (node.binary_op == BinaryOp::kAnd || node.binary_op == BinaryOp::kOr) {
      const bool is_and = node.binary_op == BinaryOp::kAnd;
      EXO_RETURN_NOT_OK(Emit(*node.lhs));
      --depth_;  // the jump pops the lhs...
      size_t jump_at = prog_.code_.size();
      prog_.code_.push_back(Instr{is_and ? Op::kAndJump : Op::kOrJump});
      EXO_RETURN_NOT_OK(Emit(*node.rhs));
      prog_.code_.push_back(Instr{Op::kRequireBool, is_and ? 0u : 1u});
      // ...and the short-circuit path re-pushes the decided value, so both
      // paths leave exactly one result (rhs depth already counted it).
      prog_.code_[jump_at].a = static_cast<uint32_t>(prog_.code_.size());
      return Status::OK();
    }
    EXO_RETURN_NOT_OK(Emit(*node.lhs));
    EXO_RETURN_NOT_OK(Emit(*node.rhs));
    Op op;
    switch (node.binary_op) {
      case BinaryOp::kEq: op = Op::kEq; break;
      case BinaryOp::kNeq: op = Op::kNeq; break;
      case BinaryOp::kLt: op = Op::kLt; break;
      case BinaryOp::kLe: op = Op::kLe; break;
      case BinaryOp::kGt: op = Op::kGt; break;
      case BinaryOp::kGe: op = Op::kGe; break;
      case BinaryOp::kAdd: op = Op::kAdd; break;
      case BinaryOp::kSub: op = Op::kSub; break;
      case BinaryOp::kMul: op = Op::kMul; break;
      case BinaryOp::kDiv: op = Op::kDiv; break;
      case BinaryOp::kMod: op = Op::kMod; break;
      default:
        return Status::Internal("unexpected binary operator");
    }
    prog_.code_.push_back(Instr{op});
    --depth_;  // two operands become one result
    return Status::OK();
  }

  const data::Container& shape_;
  CompiledCondition prog_;
  std::map<std::string, uint32_t> name_pool_;
  uint32_t depth_ = 0;
};

}  // namespace internal

Result<CompiledCondition> ConditionCompiler::Compile(
    const Node* root, const data::Container& shape) {
  if (root == nullptr) return CompiledCondition();
  internal::ConditionEmitter emitter(shape);
  EXO_RETURN_NOT_OK(emitter.Emit(*root));
  return emitter.Finish(*root);
}

}  // namespace exotica::expr
