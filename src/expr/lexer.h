// Lexer for the condition expression language.
//
// Keywords (AND, OR, NOT, TRUE, FALSE) are case-insensitive, matching the
// FDL convention. Identifiers are dotted names: letters, digits, '_',
// joined by '.'.

#ifndef EXOTICA_EXPR_LEXER_H_
#define EXOTICA_EXPR_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/token.h"

namespace exotica::expr {

/// \brief Tokenizes `source` entirely; the last token is kEnd.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_LEXER_H_
