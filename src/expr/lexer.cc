#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace exotica::expr {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kLongLit: return "integer";
    case TokenKind::kFloatLit: return "float";
    case TokenKind::kStringLit: return "string";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kEq: return "=";
    case TokenKind::kNeq: return "<>";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      // Dotted continuation: Order.Total, Block.State_1 ...
      while (i < n && source[i] == '.' && i + 1 < n && IsIdentStart(source[i + 1])) {
        ++i;  // consume '.'
        while (i < n && IsIdentChar(source[i])) ++i;
      }
      std::string word = source.substr(start, i - start);
      std::string up = ToUpper(word);
      if (up == "AND") tok.kind = TokenKind::kAnd;
      else if (up == "OR") tok.kind = TokenKind::kOr;
      else if (up == "NOT") tok.kind = TokenKind::kNot;
      else if (up == "TRUE") tok.kind = TokenKind::kTrue;
      else if (up == "FALSE") tok.kind = TokenKind::kFalse;
      else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = std::move(word);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      bool is_float = false;
      if (i < n && source[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (source[j] == '+' || source[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
        }
      }
      std::string text = source.substr(start, i - start);
      if (is_float) {
        tok.kind = TokenKind::kFloatLit;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kLongLit;
        tok.long_value = static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10));
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      std::string payload;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n) {
          std::string unescaped;
          std::string two = source.substr(i, 2);
          if (!UnescapeQuoted(two, &unescaped)) {
            return Status::ParseError(
                StrFormat("bad escape at offset %zu in condition: %s", i,
                          source.c_str()));
          }
          payload += unescaped;
          i += 2;
          continue;
        }
        if (source[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        payload += source[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string at offset %zu in condition: %s",
                      start - 1, source.c_str()));
      }
      tok.kind = TokenKind::kStringLit;
      tok.text = std::move(payload);
      out.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '=': tok.kind = TokenKind::kEq; ++i; break;
      case '<':
        if (i + 1 < n && source[i + 1] == '>') { tok.kind = TokenKind::kNeq; i += 2; }
        else if (i + 1 < n && source[i + 1] == '=') { tok.kind = TokenKind::kLe; i += 2; }
        else { tok.kind = TokenKind::kLt; ++i; }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') { tok.kind = TokenKind::kGe; i += 2; }
        else { tok.kind = TokenKind::kGt; ++i; }
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') { tok.kind = TokenKind::kNeq; i += 2; }
        else {
          return Status::ParseError(
              StrFormat("unexpected '!' at offset %zu in condition: %s", i,
                        source.c_str()));
        }
        break;
      case '+': tok.kind = TokenKind::kPlus; ++i; break;
      case '-': tok.kind = TokenKind::kMinus; ++i; break;
      case '*': tok.kind = TokenKind::kStar; ++i; break;
      case '/': tok.kind = TokenKind::kSlash; ++i; break;
      case '%': tok.kind = TokenKind::kPercent; ++i; break;
      case '(': tok.kind = TokenKind::kLParen; ++i; break;
      case ')': tok.kind = TokenKind::kRParen; ++i; break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu in condition: %s",
                      c, i, source.c_str()));
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace exotica::expr
