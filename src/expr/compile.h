// ConditionCompiler: lowers a condition AST into a CompiledCondition.
//
// Compilation binds every identifier to a member slot of one concrete
// container shape, folds identifier-free subtrees that evaluate cleanly,
// and lowers AND/OR into short-circuit jumps. It is deliberately
// conservative: anything it cannot bind statically — an identifier the
// shape doesn't declare, an expression deeper than the VM's value stack —
// returns Unsupported and the caller keeps the tree-walk evaluator for
// that condition. A compiled program must therefore only ever be run
// against containers sharing the layout of the shape it was bound to.

#ifndef EXOTICA_EXPR_COMPILE_H_
#define EXOTICA_EXPR_COMPILE_H_

#include "common/result.h"
#include "data/container.h"
#include "expr/ast.h"
#include "expr/vm.h"

namespace exotica::expr {

/// \brief Compiles condition ASTs against a container shape.
class ConditionCompiler {
 public:
  /// Compiles `root` with identifiers bound to slots of `shape`.
  /// A null `root` is the trivial condition and yields an empty
  /// (always-true) program. Returns Unsupported when the expression
  /// references a member `shape` doesn't declare or needs more than
  /// CompiledCondition::kMaxStack stack slots; the caller falls back to
  /// the tree-walk evaluator.
  static Result<CompiledCondition> Compile(const Node* root,
                                           const data::Container& shape);
};

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_COMPILE_H_
