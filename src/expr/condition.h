// Condition: a compiled, shareable condition expression.
//
// Process definitions store Conditions; the runtime evaluates them against
// per-site resolvers. A default-constructed Condition is "always true",
// which models FlowMark connectors without an explicit transition condition.

#ifndef EXOTICA_EXPR_CONDITION_H_
#define EXOTICA_EXPR_CONDITION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/ast.h"
#include "expr/eval.h"
#include "expr/parser.h"

namespace exotica::expr {

/// \brief An immutable compiled condition.
class Condition {
 public:
  /// Always-true condition (unconditioned connector).
  Condition() = default;

  /// Compiles `source`. ParseError on bad syntax.
  static Result<Condition> Compile(const std::string& source);

  /// True when no expression is attached (always-true).
  bool is_trivial() const { return root_ == nullptr; }

  /// The source text; "TRUE" for trivial conditions.
  const std::string& source() const;

  /// Evaluates against `resolver`. Trivial conditions are true.
  Result<bool> Evaluate(const ValueResolver& resolver) const;

  /// Identifiers referenced by this condition (empty for trivial).
  std::vector<std::string> Identifiers() const;

  /// The parsed expression, or null for trivial conditions. Used by the
  /// condition compiler (compile.h); the tree stays owned by this Condition.
  const Node* root() const { return root_.get(); }

 private:
  std::shared_ptr<const Node> root_;  // shared: Conditions copy freely
  std::string source_;
};

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_CONDITION_H_
