// AST for condition expressions.

#ifndef EXOTICA_EXPR_AST_H_
#define EXOTICA_EXPR_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "data/value.h"

namespace exotica::expr {

enum class NodeKind : int {
  kLiteral,     // 42, 3.5, "abc", TRUE, FALSE
  kIdentifier,  // RC, Block.State_1
  kUnary,       // NOT x, -x
  kBinary,      // arithmetic / comparison / logic
};

enum class UnaryOp : int { kNot, kNeg };

enum class BinaryOp : int {
  kAnd, kOr,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
};

const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// \brief One node of a parsed condition expression.
struct Node {
  NodeKind kind;

  // kLiteral
  data::Value literal;

  // kIdentifier
  std::string identifier;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAnd;
  NodePtr lhs;  // operand for unary
  NodePtr rhs;

  static NodePtr Literal(data::Value v);
  static NodePtr Identifier(std::string name);
  static NodePtr Unary(UnaryOp op, NodePtr operand);
  static NodePtr Binary(BinaryOp op, NodePtr lhs, NodePtr rhs);

  /// Canonical text form, fully parenthesized where needed; reparses to an
  /// identical tree.
  std::string ToString() const;

  /// Deep copy.
  NodePtr Clone() const;

  /// Collects every identifier referenced, in first-appearance order.
  void CollectIdentifiers(std::vector<std::string>* out) const;
};

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_AST_H_
