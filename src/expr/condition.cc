#include "expr/condition.h"

namespace exotica::expr {

Result<Condition> Condition::Compile(const std::string& source) {
  EXO_ASSIGN_OR_RETURN(NodePtr root, Parse(source));
  Condition c;
  c.root_ = std::shared_ptr<const Node>(root.release());
  c.source_ = c.root_->ToString();
  return c;
}

const std::string& Condition::source() const {
  static const std::string kTrue = "TRUE";
  return is_trivial() ? kTrue : source_;
}

Result<bool> Condition::Evaluate(const ValueResolver& resolver) const {
  if (is_trivial()) return true;
  return EvaluateBool(*root_, resolver);
}

std::vector<std::string> Condition::Identifiers() const {
  std::vector<std::string> out;
  if (root_) root_->CollectIdentifiers(&out);
  return out;
}

}  // namespace exotica::expr
