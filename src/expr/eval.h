// Typed evaluator for condition expressions.

#ifndef EXOTICA_EXPR_EVAL_H_
#define EXOTICA_EXPR_EVAL_H_

#include <string>

#include "common/result.h"
#include "data/container.h"
#include "expr/ast.h"

namespace exotica::expr {

/// \brief Resolves identifiers during evaluation.
///
/// Transition conditions see the source activity's output container; start
/// and exit conditions see the activity's own containers. The runtime
/// supplies the appropriate resolver per evaluation site.
class ValueResolver {
 public:
  virtual ~ValueResolver() = default;
  /// Value bound to `name`, or NotFound.
  virtual Result<data::Value> Resolve(const std::string& name) const = 0;
};

/// \brief Resolver over a single container: identifiers are member paths.
class ContainerResolver : public ValueResolver {
 public:
  explicit ContainerResolver(const data::Container& container)
      : container_(container) {}
  Result<data::Value> Resolve(const std::string& name) const override {
    return container_.Get(name);
  }

 private:
  const data::Container& container_;
};

/// \brief Evaluates `node` to a Value.
///
/// Semantics:
///  * AND/OR/NOT require booleans (short-circuiting AND/OR).
///  * = / <> work on any pair of same-kind values (numerics compare after
///    widening; string/bool compare structurally).
///  * < <= > >= work on numerics and strings (lexicographic).
///  * + - * / % work on numerics; % requires longs; / by zero is an error.
///  * A null operand (unwritten container member) is an evaluation error —
///    a condition over unset data is unevaluable, not false.
Result<data::Value> Evaluate(const Node& node, const ValueResolver& resolver);

/// \brief Evaluates and requires a boolean result.
Result<bool> EvaluateBool(const Node& node, const ValueResolver& resolver);

namespace internal {

/// Binary-operator kernels shared by the tree-walk evaluator and the
/// compiled-condition VM (vm.h), so the two implementations cannot drift
/// semantically. Not part of the public expression API.
Result<data::Value> CompareOp(BinaryOp op, const data::Value& a,
                              const data::Value& b);
Result<data::Value> ArithmeticOp(BinaryOp op, const data::Value& a,
                                 const data::Value& b);

}  // namespace internal

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_EVAL_H_
