// Recursive-descent parser for condition expressions.
//
// Grammar (lowest to highest precedence):
//   expr    := or
//   or      := and (OR and)*
//   and     := not (AND not)*
//   not     := NOT not | cmp
//   cmp     := add (( = | <> | < | <= | > | >= ) add)?
//   add     := mul ((+ | -) mul)*
//   mul     := unary ((* | / | %) unary)*
//   unary   := - unary | primary
//   primary := literal | identifier | ( expr )
//
// Comparison is non-associative: `a = b = c` is a parse error, matching
// the flavour of condition languages in workflow definition tools.

#ifndef EXOTICA_EXPR_PARSER_H_
#define EXOTICA_EXPR_PARSER_H_

#include <string>

#include "common/result.h"
#include "expr/ast.h"

namespace exotica::expr {

/// \brief Parses `source` into an expression tree.
Result<NodePtr> Parse(const std::string& source);

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_PARSER_H_
