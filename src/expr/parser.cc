#include "expr/parser.h"

#include "common/strings.h"
#include "expr/lexer.h"

namespace exotica::expr {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string source)
      : tokens_(std::move(tokens)), source_(std::move(source)) {}

  Result<NodePtr> Run() {
    EXO_ASSIGN_OR_RETURN(NodePtr root, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after expression");
    }
    return root;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat(
        "%s at offset %zu (near '%s') in condition: %s", what.c_str(),
        Peek().offset, TokenKindName(Peek().kind), source_.c_str()));
  }

  Result<NodePtr> ParseOr() {
    EXO_ASSIGN_OR_RETURN(NodePtr lhs, ParseAnd());
    while (Accept(TokenKind::kOr)) {
      EXO_ASSIGN_OR_RETURN(NodePtr rhs, ParseAnd());
      lhs = Node::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<NodePtr> ParseAnd() {
    EXO_ASSIGN_OR_RETURN(NodePtr lhs, ParseNot());
    while (Accept(TokenKind::kAnd)) {
      EXO_ASSIGN_OR_RETURN(NodePtr rhs, ParseNot());
      lhs = Node::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // NOT binds looser than comparison (SQL-style): NOT a = 1 negates the
  // whole comparison.
  Result<NodePtr> ParseNot() {
    if (Accept(TokenKind::kNot)) {
      EXO_ASSIGN_OR_RETURN(NodePtr operand, ParseNot());
      return Node::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseCmp();
  }

  Result<NodePtr> ParseCmp() {
    EXO_ASSIGN_OR_RETURN(NodePtr lhs, ParseAdd());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNeq: op = BinaryOp::kNeq; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default: return lhs;
    }
    ++pos_;
    EXO_ASSIGN_OR_RETURN(NodePtr rhs, ParseAdd());
    NodePtr cmp = Node::Binary(op, std::move(lhs), std::move(rhs));
    switch (Peek().kind) {
      case TokenKind::kEq:
      case TokenKind::kNeq:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return Error("chained comparison; parenthesize explicitly");
      default:
        return cmp;
    }
  }

  Result<NodePtr> ParseAdd() {
    EXO_ASSIGN_OR_RETURN(NodePtr lhs, ParseMul());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) op = BinaryOp::kAdd;
      else if (Peek().kind == TokenKind::kMinus) op = BinaryOp::kSub;
      else break;
      ++pos_;
      EXO_ASSIGN_OR_RETURN(NodePtr rhs, ParseMul());
      lhs = Node::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<NodePtr> ParseMul() {
    EXO_ASSIGN_OR_RETURN(NodePtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) op = BinaryOp::kMul;
      else if (Peek().kind == TokenKind::kSlash) op = BinaryOp::kDiv;
      else if (Peek().kind == TokenKind::kPercent) op = BinaryOp::kMod;
      else break;
      ++pos_;
      EXO_ASSIGN_OR_RETURN(NodePtr rhs, ParseUnary());
      lhs = Node::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<NodePtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      EXO_ASSIGN_OR_RETURN(NodePtr operand, ParseUnary());
      return Node::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<NodePtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kLongLit: {
        int64_t v = tok.long_value;
        ++pos_;
        return Node::Literal(data::Value(v));
      }
      case TokenKind::kFloatLit: {
        double v = tok.float_value;
        ++pos_;
        return Node::Literal(data::Value(v));
      }
      case TokenKind::kStringLit: {
        std::string v = tok.text;
        ++pos_;
        return Node::Literal(data::Value(std::move(v)));
      }
      case TokenKind::kTrue:
        ++pos_;
        return Node::Literal(data::Value(true));
      case TokenKind::kFalse:
        ++pos_;
        return Node::Literal(data::Value(false));
      case TokenKind::kIdentifier: {
        std::string name = tok.text;
        ++pos_;
        return Node::Identifier(std::move(name));
      }
      case TokenKind::kLParen: {
        ++pos_;
        EXO_ASSIGN_OR_RETURN(NodePtr inner, ParseOr());
        if (!Accept(TokenKind::kRParen)) {
          return Error("expected ')'");
        }
        return inner;
      }
      default:
        return Error("expected a literal, identifier or '('");
    }
  }

  std::vector<Token> tokens_;
  std::string source_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> Parse(const std::string& source) {
  EXO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens), source).Run();
}

}  // namespace exotica::expr
