// Shared condition-evaluation kernels and error-message tables.
//
// Four evaluators now execute condition semantics: the tree-walk reference
// (eval.cc), the generic VM and the typed monomorphic VM (vm.cc), and the
// native x86-64 step-program emitter (src/codegen/step_jit.cc). Their
// contract is byte-identical results *and* byte-identical error strings —
// asserted by the four-way differential property test — so the comparison
// semantics and every data-dependent error message live here, once, and
// each evaluator consumes this header instead of replicating the table.
//
// The native emitter cannot call CompareDouble at runtime, but its
// comparison lowering is this function transcribed instruction for
// instruction (see the table in docs/specs/native_codegen.md): kLe is
// lowered as !(x > y) and kGe as !(x < y), never as their IEEE <=/>=
// forms, because that is how the tree-walk kernel's three-way cmp behaves
// on NaN and how CompareDouble spells it below. Changing this header
// changes the required lowering.

#ifndef EXOTICA_EXPR_KERNELS_H_
#define EXOTICA_EXPR_KERNELS_H_

#include <cstdint>

#include "expr/ast.h"

namespace exotica::expr::internal {

// Data-dependent evaluation errors (the only errors a fully typed program
// can still raise). The prefix composes with the identifier's source text:
//   Status::FailedPrecondition(kUnsetDataPrefix + name)
inline constexpr const char kUnsetDataPrefix[] =
    "condition references unset data: ";
inline constexpr const char kDivisionByZero[] = "division by zero in condition";
inline constexpr const char kModuloByZero[] = "modulo by zero in condition";

/// \brief The one true numeric comparison: both operands widened to
/// double (longs via static_cast, exactly like Value::ToDouble), ordered
/// like the tree-walk kernel's three-way cmp.
///
/// kLe/kGe are the kernel's cmp<=0 / cmp>=0 — spelled !(x>y) / !(x<y), not
/// x<=y / x>=y. For ordinary doubles the forms agree; the spelling is kept
/// negated so a future NaN-bearing source (none exists today: Set() only
/// stores parsed literals) cannot make the evaluators diverge, and so the
/// native lowering (ucomisd + seta/setbe with swapped operand order) maps
/// one-to-one onto this switch.
inline bool CompareDouble(BinaryOp op, double x, double y) {
  switch (op) {
    case BinaryOp::kEq: return x == y;
    case BinaryOp::kNeq: return x != y;
    case BinaryOp::kLt: return x < y;
    case BinaryOp::kLe: return !(x > y);
    case BinaryOp::kGt: return x > y;
    case BinaryOp::kGe: return !(x < y);
    default: return false;  // not a comparison; callers dispatch first
  }
}

/// \brief Widening used by every evaluator when a long meets a float (and
/// by the typed VM's kI64ToF64 instructions). The native emitter's
/// cvtsi2sd is this cast in hardware.
inline double WidenLong(int64_t v) { return static_cast<double>(v); }

}  // namespace exotica::expr::internal

#endif  // EXOTICA_EXPR_KERNELS_H_
