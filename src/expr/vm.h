// CompiledCondition: slot-resolved postfix bytecode for condition
// expressions.
//
// The tree-walk evaluator (eval.h) resolves every identifier through a
// virtual ValueResolver and a string-keyed Container::Get per reference —
// on the navigator's hottest path. A CompiledCondition is the same
// expression lowered once, at NavigationPlan build time, into a flat
// program: identifiers become integer slot loads against the container's
// immutable Layout, constants are folded, and AND/OR become short-circuit
// jumps. Evaluation walks a vector of fixed-width instructions over a
// fixed-size value stack and never touches a string or allocates on the
// success path.
//
// Semantics are exactly those of expr::Evaluate — both share the binary
// operator kernels in expr::internal — including error *messages*, so the
// differential property test can demand byte-identical outcomes. The
// tree-walk stays as the reference implementation and the fallback for
// expressions the compiler cannot bind (see compile.h).
//
// A CompiledCondition is immutable after compilation and holds no mutable
// evaluation state, so one program may be evaluated concurrently from many
// engine threads (the NavigationPlan that owns it is fleet-shared).

#ifndef EXOTICA_EXPR_VM_H_
#define EXOTICA_EXPR_VM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/container.h"
#include "data/value.h"

namespace exotica::expr {

namespace internal {
class ConditionEmitter;
}  // namespace internal

/// \brief A compiled, slot-resolved condition program.
class CompiledCondition {
 public:
  /// \brief Postfix opcodes. Binary operators pop two operands and push
  /// one result; loads and constants push one value.
  enum class Op : uint8_t {
    kConst,  ///< push consts[a]
    kLoad,   ///< push container slot `a` (declared default if unwritten);
             ///< a null read is an evaluation error (names[b] names it)
    kNot,    ///< boolean negation of the top of stack
    kNeg,    ///< numeric negation of the top of stack
    // Comparisons (same-kind / numeric pairs; see expr::internal::CompareOp).
    kEq, kNeq, kLt, kLe, kGt, kGe,
    // Arithmetic (numerics; % requires longs; /0 errors).
    kAdd, kSub, kMul, kDiv, kMod,
    kAndJump,      ///< pop v (must be bool); if !v push FALSE and jump to a
    kOrJump,       ///< pop v (must be bool); if v push TRUE and jump to a
    kRequireBool,  ///< top of stack must be bool (a: 0=AND, 1=OR names the
                   ///< operator in the error); leaves the value in place
  };

  /// \brief One fixed-width instruction.
  struct Instr {
    Op op;
    uint32_t a = 0;  ///< const index / slot index / jump target / op name
    uint32_t b = 0;  ///< kLoad: index into the identifier-name pool
  };

  /// Value-stack capacity; expressions needing more fail to compile and
  /// fall back to the tree-walk.
  static constexpr uint32_t kMaxStack = 64;

  /// An empty program; evaluates to TRUE (the trivial condition).
  CompiledCondition() = default;

  /// Evaluates against `container`, which must have the layout the program
  /// was compiled against (same TypeRegistry flatten of bound_type()).
  Result<data::Value> Evaluate(const data::Container& container) const;

  /// Evaluates and requires a boolean result.
  Result<bool> EvaluateBool(const data::Container& container) const;

  bool empty() const { return code_.empty(); }
  const std::vector<Instr>& code() const { return code_; }
  /// Canonical source text of the compiled expression ("TRUE" if empty).
  const std::string& source() const { return source_; }
  /// Container type the slot bindings were resolved against.
  const std::string& bound_type() const { return bound_type_; }
  uint32_t max_stack() const { return max_stack_; }
  /// Minimum slot count a container must have to be readable.
  uint32_t min_slots() const { return min_slots_; }

 private:
  friend class internal::ConditionEmitter;

  /// The dispatch loop over a caller-provided operand stack of at least
  /// max_stack() slots; Evaluate sizes the stack to the program.
  Result<data::Value> Run(const data::Container& container,
                          data::Value* stack) const;

  std::vector<Instr> code_;
  std::vector<data::Value> consts_;
  /// Identifier text per kLoad (only consulted to build error messages).
  std::vector<std::string> names_;
  std::string source_ = "TRUE";
  std::string bound_type_;
  uint32_t max_stack_ = 0;
  uint32_t min_slots_ = 0;
};

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_VM_H_
