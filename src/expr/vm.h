// CompiledCondition: slot-resolved postfix bytecode for condition
// expressions, with an optional typed (monomorphic) program beside it.
//
// The tree-walk evaluator (eval.h) resolves every identifier through a
// virtual ValueResolver and a string-keyed Container::Get per reference —
// on the navigator's hottest path. A CompiledCondition is the same
// expression lowered once, at NavigationPlan build time, into a flat
// program: identifiers become integer slot loads against the container's
// immutable Layout, constants are folded, and AND/OR become short-circuit
// jumps. Evaluation walks a vector of fixed-width instructions over a
// fixed-size value stack and never touches a string or allocates on the
// success path.
//
// Two programs can coexist in one CompiledCondition:
//
//   * the *generic* program, whose binary operators re-discover their
//     operand kinds (long/float/string/bool) on every execution, exactly
//     like the tree-walk; it exists for every compilable expression; and
//   * the *typed* program, emitted only when the container layout's
//     declared member scalar types let the compiler type the whole
//     expression statically. Its instructions are monomorphic
//     (kLoadI64, kCmpLtF64, kAndJumpFalse, ...) and run over a stack of
//     raw machine scalars — no Value construction, no operand-kind
//     switch, no type checks that the typing pass already discharged.
//     Expressions the pass cannot fully type (string operands, mixed
//     typing that would be a runtime type error, null literals) simply
//     have no typed program and run the generic one.
//
// Semantics are exactly those of expr::Evaluate — both programs share (or
// replicate instruction for instruction) the binary operator kernels in
// expr::internal — including error *messages*, so the differential
// property test can demand byte-identical outcomes across tree-walk,
// generic VM, and typed VM. In particular the typed program widens long
// comparisons through double exactly like internal::CompareOp, and its
// division/modulo guards raise the kernels' exact errors. The tree-walk
// stays as the reference implementation and the fallback for expressions
// the compiler cannot bind (see compile.h).
//
// A CompiledCondition is immutable after compilation and holds no mutable
// evaluation state, so one program may be evaluated concurrently from many
// engine threads (the NavigationPlan that owns it is fleet-shared).

#ifndef EXOTICA_EXPR_VM_H_
#define EXOTICA_EXPR_VM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/container.h"
#include "data/value.h"

namespace exotica::expr {

namespace internal {
class ConditionEmitter;
}  // namespace internal

/// \brief A compiled, slot-resolved condition program.
class CompiledCondition {
 public:
  /// \brief Postfix opcodes of the generic program. Binary operators pop
  /// two operands and push one result; loads and constants push one value.
  enum class Op : uint8_t {
    kConst,  ///< push consts[a]
    kLoad,   ///< push container slot `a` (declared default if unwritten);
             ///< a null read is an evaluation error (names[b] names it)
    kNot,    ///< boolean negation of the top of stack
    kNeg,    ///< numeric negation of the top of stack
    // Comparisons (same-kind / numeric pairs; see expr::internal::CompareOp).
    kEq, kNeq, kLt, kLe, kGt, kGe,
    // Arithmetic (numerics; % requires longs; /0 errors).
    kAdd, kSub, kMul, kDiv, kMod,
    kAndJump,      ///< pop v (must be bool); if !v push FALSE and jump to a
    kOrJump,       ///< pop v (must be bool); if v push TRUE and jump to a
    kRequireBool,  ///< top of stack must be bool (a: 0=AND, 1=OR names the
                   ///< operator in the error); leaves the value in place
  };

  /// \brief One fixed-width instruction.
  struct Instr {
    Op op;
    uint32_t a = 0;  ///< const index / slot index / jump target / op name
    uint32_t b = 0;  ///< kLoad: index into the identifier-name pool
  };

  /// \brief Monomorphic opcodes of the typed program. The typing pass has
  /// already proven every operand's scalar type, so these ops carry no
  /// runtime type dispatch; only the data-dependent errors survive (null
  /// member reads, division/modulo by zero).
  enum class TOp : uint8_t {
    kConstI64, kConstF64, kConstB,  ///< push tconsts[a]
    kLoadI64, kLoadF64, kLoadB,     ///< push slot `a` (null read errors,
                                    ///< names[b] names the identifier)
    kI64ToF64,       ///< widen the top of stack long → double
    kI64ToF64Under,  ///< widen the long *below* the top (lhs of a mixed op)
    kNotB, kNegI64, kNegF64,
    // Comparisons push bool. The I64 variants widen through double
    // internally so they order exactly like internal::CompareOp.
    kCmpEqI64, kCmpNeI64, kCmpLtI64, kCmpLeI64, kCmpGtI64, kCmpGeI64,
    kCmpEqF64, kCmpNeF64, kCmpLtF64, kCmpLeF64, kCmpGtF64, kCmpGeF64,
    kCmpEqB, kCmpNeB,
    // Arithmetic (long op long stays long, as in the kernel; division and
    // modulo guard zero and raise the kernels' exact errors).
    kAddI64, kSubI64, kMulI64, kDivI64, kModI64,
    kAddF64, kSubF64, kMulF64, kDivF64,
    kAndJumpFalse,  ///< pop bool v; if !v push FALSE and jump to a
    kOrJumpTrue,    ///< pop bool v; if v push TRUE and jump to a
  };

  /// \brief One fixed-width typed instruction.
  struct TInstr {
    TOp op;
    uint32_t a = 0;  ///< const index / slot index / jump target
    uint32_t b = 0;  ///< loads: index into the identifier-name pool
  };

  /// \brief One typed operand-stack slot: a raw machine scalar whose kind
  /// the program knows statically.
  union TCell {
    int64_t i;
    double f;
    bool b;
  };

  /// Value-stack capacity; expressions needing more fail to compile and
  /// fall back to the tree-walk.
  static constexpr uint32_t kMaxStack = 64;

  /// An empty program; evaluates to TRUE (the trivial condition).
  CompiledCondition() = default;

  /// Evaluates against `container`, which must have the layout the program
  /// was compiled against (same TypeRegistry flatten of bound_type()).
  /// Runs the typed program when one was emitted, the generic otherwise.
  Result<data::Value> Evaluate(const data::Container& container) const;

  /// Evaluates and requires a boolean result.
  Result<bool> EvaluateBool(const data::Container& container) const;

  /// Forces the generic program even when a typed one exists (A/B
  /// benchmarking and the three-way differential test).
  Result<data::Value> EvaluateGeneric(const data::Container& container) const;
  Result<bool> EvaluateBoolGeneric(const data::Container& container) const;

  bool empty() const { return code_.empty(); }
  const std::vector<Instr>& code() const { return code_; }
  /// True when the typing pass emitted a monomorphic program.
  bool typed() const { return !typed_code_.empty(); }
  const std::vector<TInstr>& typed_code() const { return typed_code_; }
  /// Typed-program constant pool (TInstr::a of the kConst* ops). Exported
  /// for the native step-program emitter, which folds these cells into
  /// immediates at code-generation time.
  const std::vector<TCell>& typed_consts() const { return tconsts_; }
  /// Identifier text per load instruction's TInstr::b / Instr::b (error
  /// messages only). Exported so the native emitter's bailout wrapper can
  /// rebuild the exact null-read error string.
  const std::vector<std::string>& names() const { return names_; }
  /// Statically inferred scalar type of the result (kNull when untyped).
  data::ScalarType typed_result() const { return typed_result_; }
  /// Canonical source text of the compiled expression ("TRUE" if empty).
  const std::string& source() const { return source_; }
  /// Container type the slot bindings were resolved against.
  const std::string& bound_type() const { return bound_type_; }
  uint32_t max_stack() const { return max_stack_; }
  /// Minimum slot count a container must have to be readable.
  uint32_t min_slots() const { return min_slots_; }

 private:
  friend class internal::ConditionEmitter;

  /// The generic dispatch loop over a caller-provided operand stack of at
  /// least max_stack() slots; EvaluateGeneric sizes the stack to the
  /// program.
  Result<data::Value> Run(const data::Container& container,
                          data::Value* stack) const;

  /// The typed dispatch loop; returns the raw result cell (its kind is
  /// typed_result_).
  Result<TCell> RunTyped(const data::Container& container) const;

  /// Shared layout guard for both programs.
  Status CheckReadable(const data::Container& container) const;

  std::vector<Instr> code_;
  std::vector<data::Value> consts_;
  /// Identifier text per kLoad (only consulted to build error messages).
  std::vector<std::string> names_;
  /// The typed program (empty when the expression didn't fully type).
  std::vector<TInstr> typed_code_;
  std::vector<TCell> tconsts_;
  data::ScalarType typed_result_ = data::ScalarType::kNull;
  std::string source_ = "TRUE";
  std::string bound_type_;
  uint32_t max_stack_ = 0;
  uint32_t min_slots_ = 0;
};

}  // namespace exotica::expr

#endif  // EXOTICA_EXPR_VM_H_
