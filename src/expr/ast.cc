#include "expr/ast.h"

#include <algorithm>

namespace exotica::expr {

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot: return "NOT";
    case UnaryOp::kNeg: return "-";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
  }
  return "?";
}

NodePtr Node::Literal(data::Value v) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kLiteral;
  n->literal = std::move(v);
  return n;
}

NodePtr Node::Identifier(std::string name) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kIdentifier;
  n->identifier = std::move(name);
  return n;
}

NodePtr Node::Unary(UnaryOp op, NodePtr operand) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kUnary;
  n->unary_op = op;
  n->lhs = std::move(operand);
  return n;
}

NodePtr Node::Binary(BinaryOp op, NodePtr lhs, NodePtr rhs) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kBinary;
  n->binary_op = op;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

namespace {

// Higher binds tighter. Mirrors the parser's precedence ladder.
int Precedence(const Node& n) {
  switch (n.kind) {
    case NodeKind::kLiteral:
    case NodeKind::kIdentifier:
      return 100;
    case NodeKind::kUnary:
      // NOT sits between AND and the comparisons; numeric negation binds
      // tightest of the operators.
      return n.unary_op == UnaryOp::kNot ? 55 : 90;
    case NodeKind::kBinary:
      switch (n.binary_op) {
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return 80;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
          return 70;
        case BinaryOp::kEq:
        case BinaryOp::kNeq:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 60;
        case BinaryOp::kAnd:
          return 50;
        case BinaryOp::kOr:
          return 40;
      }
  }
  return 0;
}

void Print(const Node& n, int parent_prec, std::string* out) {
  int prec = Precedence(n);
  bool paren = prec < parent_prec;
  if (paren) out->push_back('(');
  switch (n.kind) {
    case NodeKind::kLiteral:
      *out += n.literal.ToString();
      break;
    case NodeKind::kIdentifier:
      *out += n.identifier;
      break;
    case NodeKind::kUnary:
      *out += UnaryOpName(n.unary_op);
      if (n.unary_op == UnaryOp::kNot) {
        // Parenthesize any non-atomic operand: "NOT (a = 1)".
        out->push_back(' ');
        Print(*n.lhs, 95, out);
      } else {
        // "--x" would reparse as double negation; parenthesize operands
        // that would start with '-' (nested negation, negative literals).
        const Node& operand = *n.lhs;
        bool starts_negative =
            (operand.kind == NodeKind::kUnary &&
             operand.unary_op == UnaryOp::kNeg) ||
            (operand.kind == NodeKind::kLiteral &&
             ((operand.literal.is_long() && operand.literal.as_long() < 0) ||
              (operand.literal.is_float() && operand.literal.as_float() < 0)));
        Print(operand, starts_negative ? 101 : prec + 1, out);
      }
      break;
    case NodeKind::kBinary:
      Print(*n.lhs, prec, out);
      out->push_back(' ');
      *out += BinaryOpName(n.binary_op);
      out->push_back(' ');
      Print(*n.rhs, prec + 1, out);
      break;
  }
  if (paren) out->push_back(')');
}

}  // namespace

std::string Node::ToString() const {
  std::string out;
  Print(*this, 0, &out);
  return out;
}

NodePtr Node::Clone() const {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  n->literal = literal;
  n->identifier = identifier;
  n->unary_op = unary_op;
  n->binary_op = binary_op;
  if (lhs) n->lhs = lhs->Clone();
  if (rhs) n->rhs = rhs->Clone();
  return n;
}

void Node::CollectIdentifiers(std::vector<std::string>* out) const {
  if (kind == NodeKind::kIdentifier) {
    if (std::find(out->begin(), out->end(), identifier) == out->end()) {
      out->push_back(identifier);
    }
    return;
  }
  if (lhs) lhs->CollectIdentifiers(out);
  if (rhs) rhs->CollectIdentifiers(out);
}

}  // namespace exotica::expr
