#include "expr/vm.h"

#include <utility>

#include "expr/ast.h"
#include "expr/eval.h"
#include "expr/kernels.h"

namespace exotica::expr {

using data::ScalarType;
using data::Value;

Status CompiledCondition::CheckReadable(const data::Container& c) const {
  if (c.slot_count() < min_slots_) {
    return Status::Internal("compiled condition bound against container type " +
                            bound_type_ + " cannot read a container of type " +
                            c.type_name());
  }
  return Status::OK();
}

Result<Value> CompiledCondition::Evaluate(const data::Container& c) const {
  if (code_.empty()) return Value(true);
  if (!typed_code_.empty()) {
    EXO_RETURN_NOT_OK(CheckReadable(c));
    EXO_ASSIGN_OR_RETURN(TCell r, RunTyped(c));
    switch (typed_result_) {
      case ScalarType::kLong: return Value(r.i);
      case ScalarType::kFloat: return Value(r.f);
      case ScalarType::kBool: return Value(r.b);
      default: break;
    }
    return Status::Internal("typed condition program has no result type");
  }
  return EvaluateGeneric(c);
}

Result<Value> CompiledCondition::EvaluateGeneric(const data::Container& c) const {
  if (code_.empty()) return Value(true);
  EXO_RETURN_NOT_OK(CheckReadable(c));
  // Size the operand stack to the program's compile-time high-water mark:
  // a typical condition needs 2-4 slots, and constructing/destroying
  // kMaxStack Values per evaluation would dominate small programs.
  if (max_stack_ <= 8) {
    Value stack[8];
    return Run(c, stack);
  }
  if (max_stack_ <= 16) {
    Value stack[16];
    return Run(c, stack);
  }
  if (max_stack_ <= 32) {
    Value stack[32];
    return Run(c, stack);
  }
  Value stack[kMaxStack];
  return Run(c, stack);
}

Result<CompiledCondition::TCell> CompiledCondition::RunTyped(
    const data::Container& c) const {
  // Raw scalar cells: no constructors, so sizing to the cap costs nothing.
  TCell stack[kMaxStack];
  uint32_t sp = 0;
  const TInstr* code = typed_code_.data();
  const size_t n = typed_code_.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const TInstr& in = code[pc];
    switch (in.op) {
      case TOp::kConstI64:
      case TOp::kConstF64:
      case TOp::kConstB:
        stack[sp++] = tconsts_[in.a];
        break;
      case TOp::kLoadI64: {
        const Value& v = c.GetSlot(in.a);
        if (v.is_null()) {
          return Status::FailedPrecondition(internal::kUnsetDataPrefix +
                                            names_[in.b]);
        }
        stack[sp++].i = v.as_long();
        break;
      }
      case TOp::kLoadF64: {
        const Value& v = c.GetSlot(in.a);
        if (v.is_null()) {
          return Status::FailedPrecondition(internal::kUnsetDataPrefix +
                                            names_[in.b]);
        }
        stack[sp++].f = v.as_float();
        break;
      }
      case TOp::kLoadB: {
        const Value& v = c.GetSlot(in.a);
        if (v.is_null()) {
          return Status::FailedPrecondition(internal::kUnsetDataPrefix +
                                            names_[in.b]);
        }
        stack[sp++].b = v.as_bool();
        break;
      }
      case TOp::kI64ToF64:
        stack[sp - 1].f = static_cast<double>(stack[sp - 1].i);
        break;
      case TOp::kI64ToF64Under:
        stack[sp - 2].f = static_cast<double>(stack[sp - 2].i);
        break;
      case TOp::kNotB:
        stack[sp - 1].b = !stack[sp - 1].b;
        break;
      case TOp::kNegI64:
        stack[sp - 1].i = -stack[sp - 1].i;
        break;
      case TOp::kNegF64:
        stack[sp - 1].f = -stack[sp - 1].f;
        break;
      // Long comparisons widen through double so they order exactly like
      // internal::CompareOp; both widths run the one shared kernel
      // (internal::CompareDouble, kernels.h), which constant-folds per
      // case since the operator is a compile-time constant here.
#define EXO_TCMP(OPC, BOP)                                         \
  case TOp::OPC##I64: {                                            \
    const double x = internal::WidenLong(stack[sp - 2].i);         \
    const double y = internal::WidenLong(stack[sp - 1].i);         \
    --sp;                                                          \
    stack[sp - 1].b = internal::CompareDouble(BinaryOp::BOP, x, y); \
    break;                                                         \
  }                                                                \
  case TOp::OPC##F64: {                                            \
    const double x = stack[sp - 2].f;                              \
    const double y = stack[sp - 1].f;                              \
    --sp;                                                          \
    stack[sp - 1].b = internal::CompareDouble(BinaryOp::BOP, x, y); \
    break;                                                         \
  }
      EXO_TCMP(kCmpEq, kEq)
      EXO_TCMP(kCmpNe, kNeq)
      EXO_TCMP(kCmpLt, kLt)
      EXO_TCMP(kCmpLe, kLe)
      EXO_TCMP(kCmpGt, kGt)
      EXO_TCMP(kCmpGe, kGe)
#undef EXO_TCMP
      case TOp::kCmpEqB: {
        const bool r = stack[sp - 2].b == stack[sp - 1].b;
        --sp;
        stack[sp - 1].b = r;
        break;
      }
      case TOp::kCmpNeB: {
        const bool r = stack[sp - 2].b != stack[sp - 1].b;
        --sp;
        stack[sp - 1].b = r;
        break;
      }
      case TOp::kAddI64:
        --sp;
        stack[sp - 1].i = stack[sp - 1].i + stack[sp].i;
        break;
      case TOp::kSubI64:
        --sp;
        stack[sp - 1].i = stack[sp - 1].i - stack[sp].i;
        break;
      case TOp::kMulI64:
        --sp;
        stack[sp - 1].i = stack[sp - 1].i * stack[sp].i;
        break;
      case TOp::kDivI64: {
        const int64_t y = stack[sp - 1].i;
        if (y == 0) {
          // The kernel's exact error (internal::ArithmeticOp).
          return Status::InvalidArgument(internal::kDivisionByZero);
        }
        --sp;
        stack[sp - 1].i = stack[sp - 1].i / y;
        break;
      }
      case TOp::kModI64: {
        const int64_t y = stack[sp - 1].i;
        if (y == 0) {
          return Status::InvalidArgument(internal::kModuloByZero);
        }
        --sp;
        stack[sp - 1].i = stack[sp - 1].i % y;
        break;
      }
      case TOp::kAddF64:
        --sp;
        stack[sp - 1].f = stack[sp - 1].f + stack[sp].f;
        break;
      case TOp::kSubF64:
        --sp;
        stack[sp - 1].f = stack[sp - 1].f - stack[sp].f;
        break;
      case TOp::kMulF64:
        --sp;
        stack[sp - 1].f = stack[sp - 1].f * stack[sp].f;
        break;
      case TOp::kDivF64: {
        const double y = stack[sp - 1].f;
        if (y == 0.0) {
          return Status::InvalidArgument(internal::kDivisionByZero);
        }
        --sp;
        stack[sp - 1].f = stack[sp - 1].f / y;
        break;
      }
      case TOp::kAndJumpFalse: {
        const bool v = stack[--sp].b;
        if (!v) {
          stack[sp++].b = false;
          pc = in.a - 1;  // for-loop increment lands on the jump target
        }
        break;
      }
      case TOp::kOrJumpTrue: {
        const bool v = stack[--sp].b;
        if (v) {
          stack[sp++].b = true;
          pc = in.a - 1;
        }
        break;
      }
    }
  }
  return stack[0];
}

Result<Value> CompiledCondition::Run(const data::Container& c,
                                     Value* stack) const {
  uint32_t sp = 0;
  const Instr* code = code_.data();
  const size_t n = code_.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const Instr& in = code[pc];
    switch (in.op) {
      case Op::kConst:
        stack[sp++] = consts_[in.a];
        break;
      case Op::kLoad: {
        const Value& v = c.GetSlot(in.a);
        if (v.is_null()) {
          return Status::FailedPrecondition(internal::kUnsetDataPrefix +
                                            names_[in.b]);
        }
        stack[sp++] = v;
        break;
      }
      case Op::kNot: {
        Value& v = stack[sp - 1];
        if (!v.is_bool()) {
          return Status::InvalidArgument("NOT requires a boolean, got " +
                                         v.ToString());
        }
        v = Value(!v.as_bool());
        break;
      }
      case Op::kNeg: {
        Value& v = stack[sp - 1];
        if (v.is_long()) {
          v = Value(-v.as_long());
        } else if (v.is_float()) {
          v = Value(-v.as_float());
        } else {
          return Status::InvalidArgument("unary '-' requires a number, got " +
                                         v.ToString());
        }
        break;
      }
      case Op::kAndJump: {
        const Value& v = stack[--sp];
        if (!v.is_bool()) {
          return Status::InvalidArgument("AND requires booleans, got " +
                                         v.ToString());
        }
        if (!v.as_bool()) {
          stack[sp++] = Value(false);
          pc = in.a - 1;  // for-loop increment lands on the jump target
        }
        break;
      }
      case Op::kOrJump: {
        const Value& v = stack[--sp];
        if (!v.is_bool()) {
          return Status::InvalidArgument("OR requires booleans, got " +
                                         v.ToString());
        }
        if (v.as_bool()) {
          stack[sp++] = Value(true);
          pc = in.a - 1;
        }
        break;
      }
      case Op::kRequireBool: {
        const Value& v = stack[sp - 1];
        if (!v.is_bool()) {
          return Status::InvalidArgument(
              std::string(in.a == 0 ? "AND" : "OR") +
              " requires booleans, got " + v.ToString());
        }
        break;
      }
      default: {
        // Binary comparison / arithmetic: pop two, push one. Numeric
        // operand pairs take inlined fast paths replicating the shared
        // kernels step for step (same double widening, same comparison
        // structure, long-preserving arithmetic); everything else —
        // strings, booleans, type errors, division/modulo by zero — goes
        // through the kernels themselves so error behaviour cannot drift.
        Value& a = stack[sp - 2];
        const Value& b = stack[sp - 1];
        if (a.is_numeric() && b.is_numeric()) {
          const bool longs = a.is_long() && b.is_long();
          const int64_t lx = longs ? a.as_long() : 0;
          const int64_t ly = longs ? b.as_long() : 0;
          const double x =
              a.is_long() ? static_cast<double>(a.as_long()) : a.as_float();
          const double y =
              b.is_long() ? static_cast<double>(b.as_long()) : b.as_float();
          bool done = true;
          switch (in.op) {
            // Comparisons: the shared kernel (kernels.h), folded per case.
#define EXO_GCMP(OPC, BOP) \
  case Op::OPC:            \
    a = Value(internal::CompareDouble(BinaryOp::BOP, x, y)); \
    break;
            EXO_GCMP(kEq, kEq)
            EXO_GCMP(kNeq, kNeq)
            EXO_GCMP(kLt, kLt)
            EXO_GCMP(kLe, kLe)
            EXO_GCMP(kGt, kGt)
            EXO_GCMP(kGe, kGe)
#undef EXO_GCMP
            case Op::kAdd: a = longs ? Value(lx + ly) : Value(x + y); break;
            case Op::kSub: a = longs ? Value(lx - ly) : Value(x - y); break;
            case Op::kMul: a = longs ? Value(lx * ly) : Value(x * y); break;
            case Op::kDiv:
              if (longs ? ly == 0 : y == 0.0) {
                done = false;  // the kernel raises division by zero
                break;
              }
              a = longs ? Value(lx / ly) : Value(x / y);
              break;
            case Op::kMod:
              if (!longs || ly == 0) {
                done = false;  // the kernel raises the type / zero error
                break;
              }
              a = Value(lx % ly);
              break;
            default:
              done = false;
              break;
          }
          if (done) {
            --sp;
            break;
          }
        }
        BinaryOp bop;
        bool compare = true;
        switch (in.op) {
          case Op::kEq: bop = BinaryOp::kEq; break;
          case Op::kNeq: bop = BinaryOp::kNeq; break;
          case Op::kLt: bop = BinaryOp::kLt; break;
          case Op::kLe: bop = BinaryOp::kLe; break;
          case Op::kGt: bop = BinaryOp::kGt; break;
          case Op::kGe: bop = BinaryOp::kGe; break;
          case Op::kAdd: bop = BinaryOp::kAdd; compare = false; break;
          case Op::kSub: bop = BinaryOp::kSub; compare = false; break;
          case Op::kMul: bop = BinaryOp::kMul; compare = false; break;
          case Op::kDiv: bop = BinaryOp::kDiv; compare = false; break;
          case Op::kMod: bop = BinaryOp::kMod; compare = false; break;
          default:
            return Status::Internal("unknown condition VM opcode");
        }
        Result<Value> r = compare ? internal::CompareOp(bop, a, b)
                                  : internal::ArithmeticOp(bop, a, b);
        if (!r.ok()) return r.status();
        a = std::move(r).value();
        --sp;
        break;
      }
    }
  }
  return std::move(stack[0]);
}

Result<bool> CompiledCondition::EvaluateBool(const data::Container& c) const {
  // Statically boolean typed programs skip Value construction entirely:
  // the non-boolean error below is impossible for them by construction.
  if (!code_.empty() && !typed_code_.empty() &&
      typed_result_ == ScalarType::kBool) {
    EXO_RETURN_NOT_OK(CheckReadable(c));
    EXO_ASSIGN_OR_RETURN(TCell r, RunTyped(c));
    return r.b;
  }
  EXO_ASSIGN_OR_RETURN(Value v, Evaluate(c));
  if (!v.is_bool()) {
    return Status::InvalidArgument("condition did not evaluate to a boolean: " +
                                   source_ + " = " + v.ToString());
  }
  return v.as_bool();
}

Result<bool> CompiledCondition::EvaluateBoolGeneric(
    const data::Container& c) const {
  EXO_ASSIGN_OR_RETURN(Value v, EvaluateGeneric(c));
  if (!v.is_bool()) {
    return Status::InvalidArgument("condition did not evaluate to a boolean: " +
                                   source_ + " = " + v.ToString());
  }
  return v.as_bool();
}

}  // namespace exotica::expr
