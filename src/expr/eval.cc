#include "expr/eval.h"

#include <cmath>

#include "common/strings.h"
#include "expr/kernels.h"

namespace exotica::expr {

using data::ScalarType;
using data::Value;

namespace {

Status TypeError(const char* what, const Value& a, const Value& b) {
  return Status::InvalidArgument(StrFormat(
      "%s not defined for %s and %s", what, a.ToString().c_str(),
      b.ToString().c_str()));
}

Status NullOperand(const Node& node) {
  return Status::FailedPrecondition(internal::kUnsetDataPrefix +
                                    node.ToString());
}

Result<Value> Compare(BinaryOp op, const Value& a, const Value& b) {
  return internal::CompareOp(op, a, b);
}

Result<Value> Arithmetic(BinaryOp op, const Value& a, const Value& b) {
  return internal::ArithmeticOp(op, a, b);
}

}  // namespace

namespace internal {

Result<Value> CompareOp(BinaryOp op, const Value& a, const Value& b) {
  // Numeric pairs all route through the one shared double comparison
  // (kernels.h), which every other evaluator replicates or transcribes.
  if (a.is_numeric() && b.is_numeric()) {
    EXO_ASSIGN_OR_RETURN(double da, a.ToDouble());
    EXO_ASSIGN_OR_RETURN(double db, b.ToDouble());
    return Value(CompareDouble(op, da, db));
  }
  // Equality on same-kind pairs.
  if (op == BinaryOp::kEq || op == BinaryOp::kNeq) {
    if (a.type() != b.type()) {
      return TypeError("equality", a, b);
    }
    const bool eq = a == b;
    return Value(op == BinaryOp::kEq ? eq : !eq);
  }
  // Ordering on strings.
  int cmp;
  if (a.is_string() && b.is_string()) {
    cmp = a.as_string().compare(b.as_string());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {
    return TypeError("ordering", a, b);
  }
  bool r = false;
  switch (op) {
    case BinaryOp::kLt: r = cmp < 0; break;
    case BinaryOp::kLe: r = cmp <= 0; break;
    case BinaryOp::kGt: r = cmp > 0; break;
    case BinaryOp::kGe: r = cmp >= 0; break;
    default: return Status::Internal("Compare called with non-comparison op");
  }
  return Value(r);
}

Result<Value> ArithmeticOp(BinaryOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return TypeError("arithmetic", a, b);
  }
  if (op == BinaryOp::kMod) {
    if (!a.is_long() || !b.is_long()) {
      return TypeError("'%'", a, b);
    }
    if (b.as_long() == 0) {
      return Status::InvalidArgument(kModuloByZero);
    }
    return Value(a.as_long() % b.as_long());
  }
  // Long op long stays long (except division by zero guard); otherwise float.
  if (a.is_long() && b.is_long()) {
    int64_t x = a.as_long(), y = b.as_long();
    switch (op) {
      case BinaryOp::kAdd: return Value(x + y);
      case BinaryOp::kSub: return Value(x - y);
      case BinaryOp::kMul: return Value(x * y);
      case BinaryOp::kDiv:
        if (y == 0) return Status::InvalidArgument(kDivisionByZero);
        return Value(x / y);
      default: break;
    }
    return Status::Internal("Arithmetic called with non-arithmetic op");
  }
  EXO_ASSIGN_OR_RETURN(double x, a.ToDouble());
  EXO_ASSIGN_OR_RETURN(double y, b.ToDouble());
  switch (op) {
    case BinaryOp::kAdd: return Value(x + y);
    case BinaryOp::kSub: return Value(x - y);
    case BinaryOp::kMul: return Value(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument(kDivisionByZero);
      return Value(x / y);
    default: break;
  }
  return Status::Internal("Arithmetic called with non-arithmetic op");
}

}  // namespace internal

Result<Value> Evaluate(const Node& node, const ValueResolver& resolver) {
  switch (node.kind) {
    case NodeKind::kLiteral:
      return node.literal;
    case NodeKind::kIdentifier: {
      EXO_ASSIGN_OR_RETURN(Value v, resolver.Resolve(node.identifier));
      if (v.is_null()) return NullOperand(node);
      return v;
    }
    case NodeKind::kUnary: {
      EXO_ASSIGN_OR_RETURN(Value v, Evaluate(*node.lhs, resolver));
      if (node.unary_op == UnaryOp::kNot) {
        if (!v.is_bool()) {
          return Status::InvalidArgument("NOT requires a boolean, got " +
                                         v.ToString());
        }
        return Value(!v.as_bool());
      }
      // Negation.
      if (v.is_long()) return Value(-v.as_long());
      if (v.is_float()) return Value(-v.as_float());
      return Status::InvalidArgument("unary '-' requires a number, got " +
                                     v.ToString());
    }
    case NodeKind::kBinary: {
      // Short-circuit logic first.
      if (node.binary_op == BinaryOp::kAnd || node.binary_op == BinaryOp::kOr) {
        EXO_ASSIGN_OR_RETURN(Value a, Evaluate(*node.lhs, resolver));
        if (!a.is_bool()) {
          return Status::InvalidArgument(
              std::string(BinaryOpName(node.binary_op)) +
              " requires booleans, got " + a.ToString());
        }
        if (node.binary_op == BinaryOp::kAnd && !a.as_bool()) return Value(false);
        if (node.binary_op == BinaryOp::kOr && a.as_bool()) return Value(true);
        EXO_ASSIGN_OR_RETURN(Value b, Evaluate(*node.rhs, resolver));
        if (!b.is_bool()) {
          return Status::InvalidArgument(
              std::string(BinaryOpName(node.binary_op)) +
              " requires booleans, got " + b.ToString());
        }
        return b;
      }
      EXO_ASSIGN_OR_RETURN(Value a, Evaluate(*node.lhs, resolver));
      EXO_ASSIGN_OR_RETURN(Value b, Evaluate(*node.rhs, resolver));
      switch (node.binary_op) {
        case BinaryOp::kEq:
        case BinaryOp::kNeq:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return Compare(node.binary_op, a, b);
        default:
          return Arithmetic(node.binary_op, a, b);
      }
    }
  }
  return Status::Internal("unreachable node kind");
}

Result<bool> EvaluateBool(const Node& node, const ValueResolver& resolver) {
  EXO_ASSIGN_OR_RETURN(Value v, Evaluate(node, resolver));
  if (!v.is_bool()) {
    return Status::InvalidArgument("condition did not evaluate to a boolean: " +
                                   node.ToString() + " = " + v.ToString());
  }
  return v.as_bool();
}

}  // namespace exotica::expr
