#include "fdl/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace exotica::fdl {

const char* FdlTokenKindName(FdlTokenKind kind) {
  switch (kind) {
    case FdlTokenKind::kEnd: return "<end>";
    case FdlTokenKind::kKeyword: return "keyword";
    case FdlTokenKind::kName: return "name";
    case FdlTokenKind::kNumber: return "number";
    case FdlTokenKind::kLParen: return "(";
    case FdlTokenKind::kRParen: return ")";
    case FdlTokenKind::kComma: return ",";
    case FdlTokenKind::kColon: return ":";
    case FdlTokenKind::kSemicolon: return ";";
  }
  return "?";
}

Result<std::vector<FdlToken>> TokenizeFdl(const std::string& source) {
  std::vector<FdlToken> out;
  size_t i = 0;
  const size_t n = source.size();
  int line = 1;
  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    FdlToken tok;
    tok.line = line;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      tok.kind = FdlTokenKind::kKeyword;
      tok.text = ToUpper(source.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.')) {
        ++i;
      }
      tok.kind = FdlTokenKind::kNumber;
      tok.text = source.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      std::string payload;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\'') {
          // '' is an escaped quote, SQL-style.
          if (i + 1 < n && source[i + 1] == '\'') {
            payload += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        if (source[i] == '\n') ++line;
        payload += source[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated quoted name starting at line %d", tok.line));
      }
      (void)start;
      tok.kind = FdlTokenKind::kName;
      tok.text = std::move(payload);
      out.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '(': tok.kind = FdlTokenKind::kLParen; break;
      case ')': tok.kind = FdlTokenKind::kRParen; break;
      case ',': tok.kind = FdlTokenKind::kComma; break;
      case ':': tok.kind = FdlTokenKind::kColon; break;
      case ';': tok.kind = FdlTokenKind::kSemicolon; break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at line %d", c, line));
    }
    ++i;
    out.push_back(std::move(tok));
  }
  FdlToken end;
  end.kind = FdlTokenKind::kEnd;
  end.line = line;
  out.push_back(std::move(end));
  return out;
}

}  // namespace exotica::fdl
