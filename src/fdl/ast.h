// FDL (FlowMark Definition Language) abstract syntax.
//
// FDL is the textual interchange format of the paper's Figure 5: the
// Exotica/FMTM pre-processor emits FDL, the import module parses and
// syntax-checks it, and the translator semantic-checks it into an
// executable process template. The dialect here follows the published
// FDL style: quoted names, keyword-led clauses, END-terminated blocks:
//
//   STRUCT 'TxnResult'
//     'RC' : LONG DEFAULT 0;
//     'Committed' : LONG DEFAULT 0;
//   END 'TxnResult'
//
//   PROGRAM 'reserve_flight' ('_Default', 'TxnResult')
//     DESCRIPTION 'Reserves a seat'
//   END 'reserve_flight'
//
//   PROCESS 'Trip' ('_Default', 'TxnResult')
//     PROGRAM_ACTIVITY 'T1' ('_Default', 'TxnResult')
//       PROGRAM 'reserve_flight'
//       START MANUAL ROLE 'clerk'
//       EXIT WHEN 'RC = 0'
//       JOIN OR
//     END 'T1'
//     PROCESS_ACTIVITY 'FB' ('_Default', 'SagaState')
//       PROCESS 'Trip_forward'
//     END 'FB'
//     CONTROL FROM 'T1' TO 'FB' WHEN 'RC = 0'
//     CONTROL FROM 'T1' TO 'Err' OTHERWISE
//     DATA FROM 'T1' TO 'FB' MAP 'RC' TO 'RC'
//     DATA FROM INPUT TO 'T1' MAP 'RC' TO 'RC'
//     DATA FROM 'FB' TO OUTPUT MAP 'RC' TO 'RC'
//   END 'Trip'

#ifndef EXOTICA_FDL_AST_H_
#define EXOTICA_FDL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace exotica::fdl {

/// \brief One member of a STRUCT declaration.
struct MemberDecl {
  std::string name;
  bool is_struct = false;  ///< quoted struct reference vs scalar keyword
  std::string type;        ///< "LONG"/"FLOAT"/"STRING"/"BOOLEAN" or struct name
  std::optional<std::string> default_literal;  ///< raw literal text
  int line = 0;
};

struct StructDecl {
  std::string name;
  std::vector<MemberDecl> members;
  int line = 0;
};

struct ProgramDecl {
  std::string name;
  std::string input_type = "_Default";
  std::string output_type = "_Default";
  std::string description;
  int line = 0;
};

struct ActivityDecl {
  std::string name;
  bool is_process_activity = false;
  std::string body;  ///< program name or subprocess name
  std::string input_type = "_Default";
  std::string output_type = "_Default";
  std::string description;
  bool manual = false;
  std::string role;
  std::string exit_condition;  ///< empty = trivial
  bool or_join = false;
  int64_t notify_after_micros = 0;
  std::string notify_role;
  int line = 0;
};

struct ControlDecl {
  std::string from;
  std::string to;
  std::string condition;  ///< empty = trivial
  bool otherwise = false;
  int line = 0;
};

struct MapDecl {
  std::string from_path;
  std::string to_path;
};

/// \brief Endpoint of a DATA clause: an activity name, INPUT, or OUTPUT.
struct DataEndpointDecl {
  enum class Kind : int { kActivity = 0, kInput = 1, kOutput = 2 };
  Kind kind = Kind::kActivity;
  std::string activity;
};

struct DataDecl {
  DataEndpointDecl from;
  DataEndpointDecl to;
  std::vector<MapDecl> maps;
  int line = 0;
};

struct ProcessDecl {
  std::string name;
  int version = 1;
  std::string input_type = "_Default";
  std::string output_type = "_Default";
  std::string description;
  std::vector<ActivityDecl> activities;
  std::vector<ControlDecl> controls;
  std::vector<DataDecl> datas;
  int line = 0;
};

/// \brief A parsed FDL document.
struct Document {
  std::vector<StructDecl> structs;
  std::vector<ProgramDecl> programs;
  std::vector<ProcessDecl> processes;
};

}  // namespace exotica::fdl

#endif  // EXOTICA_FDL_AST_H_
