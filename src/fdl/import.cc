#include "fdl/import.h"

#include "common/strings.h"
#include "fdl/parser.h"

namespace exotica::fdl {

namespace {

/// Registers `type` unless an identical one is already present; differing
/// redefinitions fail. Lets independently-emitted documents share common
/// types (TxnResult, FlexResult, ...).
Status RegisterOrVerifyType(wf::DefinitionStore* store, data::StructType type) {
  if (!store->types().Has(type.name())) {
    return store->types().Register(std::move(type));
  }
  EXO_ASSIGN_OR_RETURN(const data::StructType* existing,
                       store->types().Find(type.name()));
  const auto& a = existing->members();
  const auto& b = type.members();
  bool same = a.size() == b.size();
  for (size_t i = 0; same && i < a.size(); ++i) {
    same = a[i].name == b[i].name && a[i].scalar == b[i].scalar &&
           a[i].struct_type == b[i].struct_type &&
           a[i].default_value == b[i].default_value;
  }
  if (!same) {
    return Status::AlreadyExists("structure type " + type.name() +
                                 " already registered with a different shape");
  }
  return Status::OK();
}

Status ImportStruct(const StructDecl& decl, wf::DefinitionStore* store) {
  data::StructType type(decl.name);
  for (const MemberDecl& m : decl.members) {
    if (m.is_struct) {
      EXO_RETURN_NOT_OK(type.AddStruct(m.name, m.type));
      if (m.default_literal.has_value()) {
        return Status::ValidationError(
            StrFormat("struct member '%s.%s' (line %d): nested structures "
                      "cannot carry defaults",
                      decl.name.c_str(), m.name.c_str(), m.line));
      }
      continue;
    }
    EXO_ASSIGN_OR_RETURN(data::ScalarType scalar,
                         data::ScalarTypeFromName(m.type));
    data::Value def;
    if (m.default_literal.has_value()) {
      EXO_ASSIGN_OR_RETURN(def, data::Value::FromString(*m.default_literal));
    }
    EXO_RETURN_NOT_OK(type.AddScalar(m.name, scalar, std::move(def)));
  }
  return RegisterOrVerifyType(store, std::move(type));
}

Status ImportProgram(const ProgramDecl& decl, wf::DefinitionStore* store) {
  if (store->HasProgram(decl.name)) {
    EXO_ASSIGN_OR_RETURN(const wf::ProgramDeclaration* existing,
                         store->FindProgram(decl.name));
    if (existing->input_type != decl.input_type ||
        existing->output_type != decl.output_type) {
      return Status::AlreadyExists(
          "program " + decl.name +
          " already declared with different container shapes");
    }
    return Status::OK();
  }
  wf::ProgramDeclaration p;
  p.name = decl.name;
  p.description = decl.description;
  p.input_type = decl.input_type;
  p.output_type = decl.output_type;
  return store->DeclareProgram(std::move(p));
}

wf::DataEndpoint ToEndpoint(const DataEndpointDecl& decl) {
  switch (decl.kind) {
    case DataEndpointDecl::Kind::kActivity:
      return wf::DataEndpoint::Of(decl.activity);
    case DataEndpointDecl::Kind::kInput:
      return wf::DataEndpoint::ProcessInput();
    case DataEndpointDecl::Kind::kOutput:
      return wf::DataEndpoint::ProcessOutput();
  }
  return wf::DataEndpoint::ProcessInput();
}

Status ImportProcess(const ProcessDecl& decl, wf::DefinitionStore* store) {
  wf::ProcessDefinition process(decl.name, decl.version);
  process.set_description(decl.description);
  process.set_input_type(decl.input_type);
  process.set_output_type(decl.output_type);

  for (const ActivityDecl& a : decl.activities) {
    wf::Activity activity;
    activity.name = a.name;
    activity.description = a.description;
    activity.kind = a.is_process_activity ? wf::ActivityKind::kProcess
                                          : wf::ActivityKind::kProgram;
    (a.is_process_activity ? activity.subprocess : activity.program) = a.body;
    activity.input_type = a.input_type;
    activity.output_type = a.output_type;
    activity.start_mode =
        a.manual ? wf::StartMode::kManual : wf::StartMode::kAutomatic;
    activity.join = a.or_join ? wf::JoinKind::kOr : wf::JoinKind::kAnd;
    activity.role = a.role;
    activity.notify_after_micros = a.notify_after_micros;
    activity.notify_role = a.notify_role;
    if (!a.exit_condition.empty()) {
      auto cond = expr::Condition::Compile(a.exit_condition);
      if (!cond.ok()) {
        return cond.status().WithContext(StrFormat(
            "exit condition of activity '%s' (line %d)", a.name.c_str(),
            a.line));
      }
      activity.exit_condition = std::move(cond).value();
    }
    EXO_RETURN_NOT_OK(process.AddActivity(std::move(activity)));
  }

  for (const ControlDecl& c : decl.controls) {
    wf::ControlConnector connector;
    connector.from = c.from;
    connector.to = c.to;
    connector.is_otherwise = c.otherwise;
    if (!c.condition.empty()) {
      auto cond = expr::Condition::Compile(c.condition);
      if (!cond.ok()) {
        return cond.status().WithContext(
            StrFormat("transition condition of connector '%s' -> '%s' "
                      "(line %d)",
                      c.from.c_str(), c.to.c_str(), c.line));
      }
      connector.condition = std::move(cond).value();
    }
    EXO_RETURN_NOT_OK(process.AddControlConnector(std::move(connector)));
  }

  for (const DataDecl& d : decl.datas) {
    wf::DataConnector connector;
    connector.from = ToEndpoint(d.from);
    connector.to = ToEndpoint(d.to);
    for (const MapDecl& m : d.maps) {
      connector.mapping.Add(m.from_path, m.to_path);
    }
    EXO_RETURN_NOT_OK(process.AddDataConnector(std::move(connector)));
  }

  return store->AddProcess(std::move(process));
}

}  // namespace

Status ImportDocument(const Document& document, wf::DefinitionStore* store) {
  for (const StructDecl& s : document.structs) {
    EXO_RETURN_NOT_OK_CTX(ImportStruct(s, store),
                          "importing struct '" + s.name + "'");
  }
  EXO_RETURN_NOT_OK(store->types().Validate());
  for (const ProgramDecl& p : document.programs) {
    EXO_RETURN_NOT_OK_CTX(ImportProgram(p, store),
                          "importing program '" + p.name + "'");
  }
  for (const ProcessDecl& p : document.processes) {
    EXO_RETURN_NOT_OK_CTX(ImportProcess(p, store),
                          "importing process '" + p.name + "'");
  }
  return Status::OK();
}

Result<std::vector<std::string>> ImportFdl(const std::string& source,
                                           wf::DefinitionStore* store) {
  EXO_ASSIGN_OR_RETURN(Document doc, ParseDocument(source));
  EXO_RETURN_NOT_OK(ImportDocument(doc, store));
  std::vector<std::string> names;
  names.reserve(doc.processes.size());
  for (const ProcessDecl& p : doc.processes) names.push_back(p.name);
  return names;
}

}  // namespace exotica::fdl
