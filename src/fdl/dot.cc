#include "fdl/dot.h"

#include <set>

#include "common/strings.h"

namespace exotica::fdl {

namespace {

/// Escapes a string for a double-quoted DOT literal (ids, conditions).
std::string DotQ(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

/// Quotes a label that already contains intentional DOT escapes (\n):
/// only bare quotes are escaped.
std::string DotLabel(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

class DotWriter {
 public:
  DotWriter(const wf::DefinitionStore& store, const DotOptions& options)
      : store_(store), options_(options) {}

  Status Render(const wf::ProcessDefinition& root, std::string* out) {
    out_ = out;
    *out_ += "digraph " + DotQ(root.name()) + " {\n";
    *out_ += "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
    EXO_RETURN_NOT_OK(Emit(root, /*prefix=*/"", /*depth=*/0));
    *out_ += "}\n";
    return Status::OK();
  }

 private:
  std::string NodeId(const std::string& prefix, const std::string& activity) {
    return DotQ(prefix + activity);
  }

  Status Emit(const wf::ProcessDefinition& process, const std::string& prefix,
              int depth) {
    if (depth > 16) {
      return Status::ValidationError("block nesting too deep for rendering");
    }
    std::string indent(static_cast<size_t>(2 * (depth + 1)), ' ');

    for (const wf::Activity& a : process.activities()) {
      if (a.is_process() && options_.expand_blocks) {
        // Clusters draw the paper's block boxes.
        EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* sub,
                             store_.FindProcess(a.subprocess));
        *out_ += indent + "subgraph " + DotQ("cluster_" + prefix + a.name) +
                 " {\n";
        *out_ += indent + "  label=" + DotQ(a.name + " : " + a.subprocess) +
                 ";\n" + indent + "  style=rounded;\n";
        // Anchor node so connectors to/from the block have an endpoint.
        *out_ += indent + "  " + NodeId(prefix, a.name) +
                 " [shape=point, style=invis];\n";
        EXO_RETURN_NOT_OK(Emit(*sub, prefix + a.name + "/", depth + 1));
        *out_ += indent + "}\n";
        continue;
      }
      std::string shape = a.is_process() ? "box3d" : "box";
      std::string label = a.name;
      if (a.is_program()) label += "\\n[" + a.program + "]";
      else label += "\\n<" + a.subprocess + ">";
      if (!a.exit_condition.is_trivial()) {
        label += "\\nexit: " + a.exit_condition.source();
      }
      std::string extras;
      if (a.start_mode == wf::StartMode::kManual) {
        extras = ", style=filled, fillcolor=lightyellow";
        label += "\\nrole: " + a.role;
      }
      if (a.join == wf::JoinKind::kOr) label += "\\n(OR join)";
      *out_ += indent + NodeId(prefix, a.name) + " [shape=" + shape +
               ", label=" + DotLabel(label) + extras + "];\n";
    }

    for (const wf::ControlConnector& c : process.control_connectors()) {
      std::string attrs;
      if (c.is_otherwise) {
        attrs = " [label=\"otherwise\", style=dashed]";
      } else if (!c.condition.is_trivial()) {
        attrs = " [label=" + DotQ(c.condition.source()) + "]";
      }
      *out_ += indent + NodeId(prefix, c.from) + " -> " +
               NodeId(prefix, c.to) + attrs + ";\n";
    }

    if (options_.show_data) {
      for (const wf::DataConnector& d : process.data_connectors()) {
        if (!d.from.is_activity() || !d.to.is_activity()) continue;
        std::vector<std::string> fields;
        for (const data::FieldMap& m : d.mapping.maps()) {
          fields.push_back(m.from_path + "->" + m.to_path);
        }
        *out_ += indent + NodeId(prefix, d.from.activity) + " -> " +
                 NodeId(prefix, d.to.activity) + " [color=gray, style=dotted" +
                 ", label=" + DotLabel(Join(fields, "\\n")) +
                 ", fontcolor=gray];\n";
      }
    }
    return Status::OK();
  }

  const wf::DefinitionStore& store_;
  const DotOptions& options_;
  std::string* out_ = nullptr;
};

}  // namespace

Result<std::string> ExportDot(const wf::DefinitionStore& store,
                              const std::string& process_name,
                              const DotOptions& options) {
  EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* process,
                       store.FindProcess(process_name));
  std::string out;
  DotWriter writer(store, options);
  EXO_RETURN_NOT_OK(writer.Render(*process, &out));
  return out;
}

}  // namespace exotica::fdl
