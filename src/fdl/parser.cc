#include "fdl/parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "fdl/lexer.h"

namespace exotica::fdl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<FdlToken> tokens) : tokens_(std::move(tokens)) {}

  Result<Document> Run() {
    Document doc;
    while (Peek().kind != FdlTokenKind::kEnd) {
      if (PeekKeyword("STRUCT")) {
        EXO_ASSIGN_OR_RETURN(StructDecl s, ParseStruct());
        doc.structs.push_back(std::move(s));
      } else if (PeekKeyword("PROGRAM")) {
        EXO_ASSIGN_OR_RETURN(ProgramDecl p, ParseProgram());
        doc.programs.push_back(std::move(p));
      } else if (PeekKeyword("PROCESS")) {
        EXO_ASSIGN_OR_RETURN(ProcessDecl p, ParseProcess());
        doc.processes.push_back(std::move(p));
      } else {
        return Error("expected STRUCT, PROGRAM or PROCESS");
      }
    }
    return doc;
  }

 private:
  const FdlToken& Peek() const { return tokens_[pos_]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == FdlTokenKind::kKeyword && Peek().text == kw;
  }

  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  Status Expect(FdlTokenKind kind) {
    if (Peek().kind != kind) {
      return Error(std::string("expected ") + FdlTokenKindName(kind));
    }
    ++pos_;
    return Status::OK();
  }

  bool Accept(FdlTokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ExpectName() {
    if (Peek().kind != FdlTokenKind::kName) {
      return Error("expected a quoted name");
    }
    std::string name = Peek().text;
    ++pos_;
    return name;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat(
        "%s at line %d (near %s '%s')", what.c_str(), Peek().line,
        FdlTokenKindName(Peek().kind), Peek().text.c_str()));
  }

  /// END 'name' — the name must match the block's.
  Status ExpectEnd(const std::string& block_name) {
    EXO_RETURN_NOT_OK(ExpectKeyword("END"));
    EXO_ASSIGN_OR_RETURN(std::string name, ExpectName());
    if (name != block_name) {
      return Status::ParseError(StrFormat(
          "END '%s' does not match block '%s' (line %d)", name.c_str(),
          block_name.c_str(), Peek().line));
    }
    return Status::OK();
  }

  /// ('input_type', 'output_type') — optional; defaults stand otherwise.
  Status ParseContainerShapes(std::string* input_type,
                              std::string* output_type) {
    if (!Accept(FdlTokenKind::kLParen)) return Status::OK();
    EXO_ASSIGN_OR_RETURN(*input_type, ExpectName());
    EXO_RETURN_NOT_OK(Expect(FdlTokenKind::kComma));
    EXO_ASSIGN_OR_RETURN(*output_type, ExpectName());
    return Expect(FdlTokenKind::kRParen);
  }

  Result<StructDecl> ParseStruct() {
    StructDecl decl;
    decl.line = Peek().line;
    EXO_RETURN_NOT_OK(ExpectKeyword("STRUCT"));
    EXO_ASSIGN_OR_RETURN(decl.name, ExpectName());
    while (!PeekKeyword("END")) {
      MemberDecl m;
      m.line = Peek().line;
      EXO_ASSIGN_OR_RETURN(m.name, ExpectName());
      EXO_RETURN_NOT_OK(Expect(FdlTokenKind::kColon));
      if (Peek().kind == FdlTokenKind::kKeyword) {
        m.is_struct = false;
        m.type = Peek().text;
        ++pos_;
      } else if (Peek().kind == FdlTokenKind::kName) {
        m.is_struct = true;
        m.type = Peek().text;
        ++pos_;
      } else {
        return Error("expected a scalar type keyword or quoted struct name");
      }
      if (AcceptKeyword("DEFAULT")) {
        // Literal: number, quoted string, or TRUE/FALSE keyword.
        if (Peek().kind == FdlTokenKind::kNumber) {
          m.default_literal = Peek().text;
          ++pos_;
        } else if (Peek().kind == FdlTokenKind::kName) {
          m.default_literal = "\"" + EscapeQuoted(Peek().text) + "\"";
          ++pos_;
        } else if (PeekKeyword("TRUE") || PeekKeyword("FALSE")) {
          m.default_literal = Peek().text;
          ++pos_;
        } else {
          return Error("expected a default literal");
        }
      }
      EXO_RETURN_NOT_OK(Expect(FdlTokenKind::kSemicolon));
      decl.members.push_back(std::move(m));
    }
    EXO_RETURN_NOT_OK(ExpectEnd(decl.name));
    return decl;
  }

  Result<ProgramDecl> ParseProgram() {
    ProgramDecl decl;
    decl.line = Peek().line;
    EXO_RETURN_NOT_OK(ExpectKeyword("PROGRAM"));
    EXO_ASSIGN_OR_RETURN(decl.name, ExpectName());
    EXO_RETURN_NOT_OK(ParseContainerShapes(&decl.input_type, &decl.output_type));
    while (!PeekKeyword("END")) {
      if (AcceptKeyword("DESCRIPTION")) {
        EXO_ASSIGN_OR_RETURN(decl.description, ExpectName());
      } else {
        return Error("expected DESCRIPTION or END in PROGRAM block");
      }
    }
    EXO_RETURN_NOT_OK(ExpectEnd(decl.name));
    return decl;
  }

  Result<ActivityDecl> ParseActivity(bool is_process_activity) {
    ActivityDecl decl;
    decl.line = Peek().line;
    decl.is_process_activity = is_process_activity;
    EXO_RETURN_NOT_OK(ExpectKeyword(is_process_activity ? "PROCESS_ACTIVITY"
                                                        : "PROGRAM_ACTIVITY"));
    EXO_ASSIGN_OR_RETURN(decl.name, ExpectName());
    EXO_RETURN_NOT_OK(ParseContainerShapes(&decl.input_type, &decl.output_type));
    while (!PeekKeyword("END")) {
      if (AcceptKeyword("PROGRAM")) {
        if (is_process_activity) {
          return Error("PROGRAM clause inside PROCESS_ACTIVITY");
        }
        EXO_ASSIGN_OR_RETURN(decl.body, ExpectName());
      } else if (AcceptKeyword("PROCESS")) {
        if (!is_process_activity) {
          return Error("PROCESS clause inside PROGRAM_ACTIVITY");
        }
        EXO_ASSIGN_OR_RETURN(decl.body, ExpectName());
      } else if (AcceptKeyword("DESCRIPTION")) {
        EXO_ASSIGN_OR_RETURN(decl.description, ExpectName());
      } else if (AcceptKeyword("START")) {
        if (AcceptKeyword("AUTOMATIC")) {
          decl.manual = false;
        } else if (AcceptKeyword("MANUAL")) {
          decl.manual = true;
          if (AcceptKeyword("ROLE")) {
            EXO_ASSIGN_OR_RETURN(decl.role, ExpectName());
          }
        } else {
          return Error("expected AUTOMATIC or MANUAL after START");
        }
      } else if (AcceptKeyword("ROLE")) {
        EXO_ASSIGN_OR_RETURN(decl.role, ExpectName());
      } else if (AcceptKeyword("EXIT")) {
        EXO_RETURN_NOT_OK(ExpectKeyword("WHEN"));
        EXO_ASSIGN_OR_RETURN(decl.exit_condition, ExpectName());
      } else if (AcceptKeyword("JOIN")) {
        if (AcceptKeyword("AND")) {
          decl.or_join = false;
        } else if (AcceptKeyword("OR")) {
          decl.or_join = true;
        } else {
          return Error("expected AND or OR after JOIN");
        }
      } else if (AcceptKeyword("NOTIFY")) {
        EXO_ASSIGN_OR_RETURN(decl.notify_role, ExpectName());
        EXO_RETURN_NOT_OK(ExpectKeyword("AFTER"));
        if (Peek().kind != FdlTokenKind::kNumber) {
          return Error("expected microsecond count after AFTER");
        }
        decl.notify_after_micros = std::strtoll(Peek().text.c_str(), nullptr, 10);
        ++pos_;
      } else {
        return Error("unexpected clause in activity block");
      }
    }
    EXO_RETURN_NOT_OK(ExpectEnd(decl.name));
    if (decl.body.empty()) {
      return Status::ParseError(StrFormat(
          "activity '%s' (line %d) names no %s", decl.name.c_str(), decl.line,
          is_process_activity ? "PROCESS" : "PROGRAM"));
    }
    return decl;
  }

  Result<DataEndpointDecl> ParseDataEndpoint() {
    DataEndpointDecl e;
    if (AcceptKeyword("INPUT")) {
      e.kind = DataEndpointDecl::Kind::kInput;
      return e;
    }
    if (AcceptKeyword("OUTPUT")) {
      e.kind = DataEndpointDecl::Kind::kOutput;
      return e;
    }
    e.kind = DataEndpointDecl::Kind::kActivity;
    EXO_ASSIGN_OR_RETURN(e.activity, ExpectName());
    return e;
  }

  Result<ProcessDecl> ParseProcess() {
    ProcessDecl decl;
    decl.line = Peek().line;
    EXO_RETURN_NOT_OK(ExpectKeyword("PROCESS"));
    EXO_ASSIGN_OR_RETURN(decl.name, ExpectName());
    EXO_RETURN_NOT_OK(ParseContainerShapes(&decl.input_type, &decl.output_type));
    while (!PeekKeyword("END")) {
      if (AcceptKeyword("DESCRIPTION")) {
        EXO_ASSIGN_OR_RETURN(decl.description, ExpectName());
      } else if (AcceptKeyword("VERSION")) {
        if (Peek().kind != FdlTokenKind::kNumber) {
          return Error("expected a number after VERSION");
        }
        decl.version = static_cast<int>(std::strtol(Peek().text.c_str(),
                                                    nullptr, 10));
        ++pos_;
      } else if (PeekKeyword("PROGRAM_ACTIVITY")) {
        EXO_ASSIGN_OR_RETURN(ActivityDecl a, ParseActivity(false));
        decl.activities.push_back(std::move(a));
      } else if (PeekKeyword("PROCESS_ACTIVITY")) {
        EXO_ASSIGN_OR_RETURN(ActivityDecl a, ParseActivity(true));
        decl.activities.push_back(std::move(a));
      } else if (AcceptKeyword("CONTROL")) {
        ControlDecl c;
        c.line = Peek().line;
        EXO_RETURN_NOT_OK(ExpectKeyword("FROM"));
        EXO_ASSIGN_OR_RETURN(c.from, ExpectName());
        EXO_RETURN_NOT_OK(ExpectKeyword("TO"));
        EXO_ASSIGN_OR_RETURN(c.to, ExpectName());
        if (AcceptKeyword("WHEN")) {
          EXO_ASSIGN_OR_RETURN(c.condition, ExpectName());
        } else if (AcceptKeyword("OTHERWISE")) {
          c.otherwise = true;
        }
        decl.controls.push_back(std::move(c));
      } else if (AcceptKeyword("DATA")) {
        DataDecl d;
        d.line = Peek().line;
        EXO_RETURN_NOT_OK(ExpectKeyword("FROM"));
        EXO_ASSIGN_OR_RETURN(d.from, ParseDataEndpoint());
        EXO_RETURN_NOT_OK(ExpectKeyword("TO"));
        EXO_ASSIGN_OR_RETURN(d.to, ParseDataEndpoint());
        while (AcceptKeyword("MAP")) {
          MapDecl m;
          EXO_ASSIGN_OR_RETURN(m.from_path, ExpectName());
          EXO_RETURN_NOT_OK(ExpectKeyword("TO"));
          EXO_ASSIGN_OR_RETURN(m.to_path, ExpectName());
          d.maps.push_back(std::move(m));
        }
        if (d.maps.empty()) {
          return Error("DATA clause needs at least one MAP");
        }
        decl.datas.push_back(std::move(d));
      } else {
        return Error("unexpected clause in PROCESS block");
      }
    }
    EXO_RETURN_NOT_OK(ExpectEnd(decl.name));
    return decl;
  }

  std::vector<FdlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Document> ParseDocument(const std::string& source) {
  EXO_ASSIGN_OR_RETURN(std::vector<FdlToken> tokens, TokenizeFdl(source));
  return Parser(std::move(tokens)).Run();
}

}  // namespace exotica::fdl
