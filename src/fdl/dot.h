// Graphviz export: render a process definition (the paper's figures) as
// DOT. `fmtm dot <spec>` draws the translated workflow — Figure 2 and
// Figure 4 regenerate from their specs.

#ifndef EXOTICA_FDL_DOT_H_
#define EXOTICA_FDL_DOT_H_

#include <string>

#include "common/result.h"
#include "wf/process.h"

namespace exotica::fdl {

struct DotOptions {
  /// Inline the subprocess graphs of process activities as clusters
  /// (recursively), reproducing the paper's block drawings.
  bool expand_blocks = true;
  /// Include data connectors (gray dashed edges with the field list).
  bool show_data = true;
};

/// \brief Renders `process_name` (latest version) from `store` as DOT.
Result<std::string> ExportDot(const wf::DefinitionStore& store,
                              const std::string& process_name,
                              const DotOptions& options = {});

}  // namespace exotica::fdl

#endif  // EXOTICA_FDL_DOT_H_
