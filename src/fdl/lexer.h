// FDL lexer.

#ifndef EXOTICA_FDL_LEXER_H_
#define EXOTICA_FDL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace exotica::fdl {

enum class FdlTokenKind : int {
  kEnd,
  kKeyword,     // bare word: PROCESS, STRUCT, LONG, FROM, ...
  kName,        // 'quoted name'
  kNumber,      // 42 or 3.5 (raw text kept)
  kLParen,
  kRParen,
  kComma,
  kColon,
  kSemicolon,
};

const char* FdlTokenKindName(FdlTokenKind kind);

struct FdlToken {
  FdlTokenKind kind = FdlTokenKind::kEnd;
  std::string text;  ///< keyword spelling (uppercased) / name / number text
  int line = 1;
};

/// \brief Tokenizes FDL source. Comments run from "--" to end of line.
Result<std::vector<FdlToken>> TokenizeFdl(const std::string& source);

}  // namespace exotica::fdl

#endif  // EXOTICA_FDL_LEXER_H_
