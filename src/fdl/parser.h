// FDL parser: source text → Document. This is the syntax-checking half of
// FlowMark's import module in the paper's Figure-5 pipeline.

#ifndef EXOTICA_FDL_PARSER_H_
#define EXOTICA_FDL_PARSER_H_

#include <string>

#include "common/result.h"
#include "fdl/ast.h"

namespace exotica::fdl {

/// \brief Parses an FDL document. ParseError with line info on bad syntax.
Result<Document> ParseDocument(const std::string& source);

}  // namespace exotica::fdl

#endif  // EXOTICA_FDL_PARSER_H_
