#include "fdl/export.h"

#include <set>

#include "common/strings.h"

namespace exotica::fdl {

namespace {

/// Quotes a name in FDL style ('' escapes a quote).
std::string Q(const std::string& name) {
  std::string out = "'";
  for (char c : name) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string DefaultLiteral(const data::Value& v) {
  if (v.is_string()) return Q(v.as_string());
  return v.ToString();  // numbers, TRUE/FALSE
}

void AppendActivity(const wf::Activity& a, std::string* out) {
  *out += "  ";
  *out += a.is_program() ? "PROGRAM_ACTIVITY " : "PROCESS_ACTIVITY ";
  *out += Q(a.name) + " (" + Q(a.input_type) + ", " + Q(a.output_type) + ")\n";
  if (a.is_program()) {
    *out += "    PROGRAM " + Q(a.program) + "\n";
  } else {
    *out += "    PROCESS " + Q(a.subprocess) + "\n";
  }
  if (!a.description.empty()) {
    *out += "    DESCRIPTION " + Q(a.description) + "\n";
  }
  if (a.start_mode == wf::StartMode::kManual) {
    *out += "    START MANUAL";
    if (!a.role.empty()) *out += " ROLE " + Q(a.role);
    *out += "\n";
  }
  if (!a.exit_condition.is_trivial()) {
    *out += "    EXIT WHEN " + Q(a.exit_condition.source()) + "\n";
  }
  if (a.join == wf::JoinKind::kOr) {
    *out += "    JOIN OR\n";
  }
  if (a.notify_after_micros > 0 && !a.notify_role.empty()) {
    *out += "    NOTIFY " + Q(a.notify_role) + " AFTER " +
            std::to_string(a.notify_after_micros) + "\n";
  }
  *out += "  END " + Q(a.name) + "\n";
}

std::string EndpointText(const wf::DataEndpoint& e) {
  switch (e.kind) {
    case wf::DataEndpoint::Kind::kActivity: return Q(e.activity);
    case wf::DataEndpoint::Kind::kProcessInput: return "INPUT";
    case wf::DataEndpoint::Kind::kProcessOutput: return "OUTPUT";
  }
  return "?";
}

/// Collects `type_name` and its nested struct types, dependencies first.
Status CollectTypes(const data::TypeRegistry& types,
                    const std::string& type_name,
                    std::set<std::string>* seen,
                    std::vector<std::string>* ordered) {
  if (type_name == data::TypeRegistry::kDefaultTypeName) return Status::OK();
  if (seen->count(type_name) > 0) return Status::OK();
  seen->insert(type_name);
  EXO_ASSIGN_OR_RETURN(const data::StructType* type, types.Find(type_name));
  for (const data::Member& m : type->members()) {
    if (m.is_struct()) {
      EXO_RETURN_NOT_OK(CollectTypes(types, m.struct_type, seen, ordered));
    }
  }
  ordered->push_back(type_name);
  return Status::OK();
}

/// Collects `process` and its subprocesses, dependencies first, plus the
/// programs and container types they reference.
Status CollectProcess(const wf::DefinitionStore& store,
                      const std::string& process_name,
                      std::set<std::string>* seen_procs,
                      std::vector<std::string>* procs,
                      std::set<std::string>* seen_types,
                      std::vector<std::string>* types,
                      std::set<std::string>* seen_programs,
                      std::vector<std::string>* programs) {
  if (seen_procs->count(process_name) > 0) return Status::OK();
  seen_procs->insert(process_name);
  EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* p,
                       store.FindProcess(process_name));
  EXO_RETURN_NOT_OK(CollectTypes(store.types(), p->input_type(), seen_types,
                                 types));
  EXO_RETURN_NOT_OK(CollectTypes(store.types(), p->output_type(), seen_types,
                                 types));
  for (const wf::Activity& a : p->activities()) {
    EXO_RETURN_NOT_OK(CollectTypes(store.types(), a.input_type, seen_types,
                                   types));
    EXO_RETURN_NOT_OK(CollectTypes(store.types(), a.output_type, seen_types,
                                   types));
    if (a.is_process()) {
      EXO_RETURN_NOT_OK(CollectProcess(store, a.subprocess, seen_procs, procs,
                                       seen_types, types, seen_programs,
                                       programs));
    } else if (seen_programs->insert(a.program).second) {
      programs->push_back(a.program);
    }
  }
  procs->push_back(process_name);
  return Status::OK();
}

}  // namespace

Result<std::string> ExportStruct(const data::TypeRegistry& types,
                                 const std::string& type_name) {
  EXO_ASSIGN_OR_RETURN(const data::StructType* type, types.Find(type_name));
  std::string out = "STRUCT " + Q(type->name()) + "\n";
  for (const data::Member& m : type->members()) {
    out += "  " + Q(m.name) + " : ";
    if (m.is_struct()) {
      out += Q(m.struct_type);
    } else {
      out += data::ScalarTypeName(m.scalar);
    }
    if (!m.default_value.is_null()) {
      out += " DEFAULT " + DefaultLiteral(m.default_value);
    }
    out += ";\n";
  }
  out += "END " + Q(type->name()) + "\n";
  return out;
}

std::string ExportProgram(const wf::ProgramDeclaration& program) {
  std::string out = "PROGRAM " + Q(program.name) + " (" +
                    Q(program.input_type) + ", " + Q(program.output_type) +
                    ")\n";
  if (!program.description.empty()) {
    out += "  DESCRIPTION " + Q(program.description) + "\n";
  }
  out += "END " + Q(program.name) + "\n";
  return out;
}

std::string ExportProcess(const wf::ProcessDefinition& process) {
  std::string out = "PROCESS " + Q(process.name()) + " (" +
                    Q(process.input_type()) + ", " + Q(process.output_type()) +
                    ")\n";
  if (process.version() != 1) {
    out += "  VERSION " + std::to_string(process.version()) + "\n";
  }
  if (!process.description().empty()) {
    out += "  DESCRIPTION " + Q(process.description()) + "\n";
  }
  for (const wf::Activity& a : process.activities()) {
    AppendActivity(a, &out);
  }
  for (const wf::ControlConnector& c : process.control_connectors()) {
    out += "  CONTROL FROM " + Q(c.from) + " TO " + Q(c.to);
    if (c.is_otherwise) {
      out += " OTHERWISE";
    } else if (!c.condition.is_trivial()) {
      out += " WHEN " + Q(c.condition.source());
    }
    out += "\n";
  }
  for (const wf::DataConnector& d : process.data_connectors()) {
    out += "  DATA FROM " + EndpointText(d.from) + " TO " + EndpointText(d.to);
    for (const data::FieldMap& m : d.mapping.maps()) {
      out += " MAP " + Q(m.from_path) + " TO " + Q(m.to_path);
    }
    out += "\n";
  }
  out += "END " + Q(process.name()) + "\n";
  return out;
}

Result<std::string> ExportClosure(const wf::DefinitionStore& store,
                                  const std::vector<std::string>& processes) {
  std::set<std::string> seen_procs, seen_types, seen_programs;
  std::vector<std::string> procs, types, programs;
  for (const std::string& name : processes) {
    EXO_RETURN_NOT_OK(CollectProcess(store, name, &seen_procs, &procs,
                                     &seen_types, &types, &seen_programs,
                                     &programs));
  }
  std::string out;
  for (const std::string& t : types) {
    EXO_ASSIGN_OR_RETURN(std::string text, ExportStruct(store.types(), t));
    out += text + "\n";
  }
  for (const std::string& p : programs) {
    EXO_ASSIGN_OR_RETURN(const wf::ProgramDeclaration* decl,
                         store.FindProgram(p));
    out += ExportProgram(*decl) + "\n";
  }
  for (const std::string& p : procs) {
    EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* def,
                         store.FindProcess(p));
    out += ExportProcess(*def) + "\n";
  }
  return out;
}

}  // namespace exotica::fdl
