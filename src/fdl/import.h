// FDL importer: Document → DefinitionStore. Combines the paper's import
// module (syntax already handled by the parser) with the translator's
// semantic checks — every registered process passes ValidateProcess.

#ifndef EXOTICA_FDL_IMPORT_H_
#define EXOTICA_FDL_IMPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fdl/ast.h"
#include "wf/process.h"

namespace exotica::fdl {

/// \brief Imports a parsed document into `store`.
///
/// Structs and programs register first, then processes in document order
/// (subprocesses must precede the processes that embed them, matching
/// the bottom-up order the Exotica translators emit).
Status ImportDocument(const Document& document, wf::DefinitionStore* store);

/// \brief Parse + import in one step; returns the names of the processes
/// registered.
Result<std::vector<std::string>> ImportFdl(const std::string& source,
                                           wf::DefinitionStore* store);

}  // namespace exotica::fdl

#endif  // EXOTICA_FDL_IMPORT_H_
