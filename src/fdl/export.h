// FDL exporter: definitions → canonical FDL text. The Exotica translators
// emit their workflow processes through this printer, and round-trip
// tests (export → parse → import → export) pin the dialect down.

#ifndef EXOTICA_FDL_EXPORT_H_
#define EXOTICA_FDL_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "wf/process.h"

namespace exotica::fdl {

/// \brief Prints one struct type declaration.
Result<std::string> ExportStruct(const data::TypeRegistry& types,
                                 const std::string& type_name);

/// \brief Prints one program declaration.
std::string ExportProgram(const wf::ProgramDeclaration& program);

/// \brief Prints one process definition.
std::string ExportProcess(const wf::ProcessDefinition& process);

/// \brief Prints a self-contained document: the named processes plus (in
/// dependency order) every struct type, program, and subprocess they
/// reach. Built-in types are omitted.
Result<std::string> ExportClosure(const wf::DefinitionStore& store,
                                  const std::vector<std::string>& processes);

}  // namespace exotica::fdl

#endif  // EXOTICA_FDL_EXPORT_H_
