#include "txn/tpc.h"

namespace exotica::txn {

Result<TpcOutcome> TwoPhaseCommit::Execute(
    const std::vector<TpcBranch>& branches) {
  if (branches.empty()) {
    return Status::InvalidArgument("global transaction has no branches");
  }
  ++stats_.globals_started;

  std::vector<std::unique_ptr<Transaction>> txns;
  txns.reserve(branches.size());

  auto abort_all = [&](int failed_at) -> TpcOutcome {
    for (auto& t : txns) {
      if (t && (t->active() || t->prepared())) (void)t->Abort();
    }
    ++stats_.globals_aborted;
    TpcOutcome out;
    out.committed = false;
    out.failed_branch = failed_at;
    return out;
  };

  // Work phase.
  for (size_t i = 0; i < branches.size(); ++i) {
    EXO_ASSIGN_OR_RETURN(Site * site, multidb_->site(branches[i].site));
    txns.push_back(site->Begin());
    Status st = branches[i].body(*txns.back());
    if (!st.ok()) {
      return abort_all(static_cast<int>(i));
    }
  }

  // Phase 1: collect votes.
  for (size_t i = 0; i < branches.size(); ++i) {
    Status vote = txns[i]->Prepare();
    if (!vote.ok()) {
      if (vote.IsAborted()) return abort_all(static_cast<int>(i));
      return vote;  // infrastructure failure
    }
  }

  // Phase 2: commit everywhere. Prepared transactions cannot refuse.
  for (auto& t : txns) {
    EXO_RETURN_NOT_OK(t->Commit());
  }
  ++stats_.globals_committed;
  TpcOutcome out;
  out.committed = true;
  return out;
}

}  // namespace exotica::txn
