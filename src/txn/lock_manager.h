// Strict two-phase locking with waits-for deadlock detection.
//
// The paper (§2) observes that "most databases today use Strict 2 Phase
// Locking for write operations"; each local database site in the
// multidatabase substrate uses exactly that.

#ifndef EXOTICA_TXN_LOCK_MANAGER_H_
#define EXOTICA_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace exotica::txn {

using TxnId = uint64_t;

enum class LockMode : int { kShared = 0, kExclusive = 1 };

/// \brief Key-granularity lock table.
///
/// Blocking acquire with deadlock detection: before a transaction waits,
/// the waits-for graph is checked; if waiting would close a cycle the
/// requester is chosen as the victim and receives kDeadlock. Locks are
/// held until ReleaseAll (strictness).
class LockManager {
 public:
  /// Acquires `key` in `mode` for `txn`. Upgrades shared → exclusive when
  /// `txn` is the only shared holder. Blocks while incompatible holders
  /// exist; Deadlock if waiting would deadlock; Timeout after
  /// `timeout_micros` (0 = wait forever).
  Status Acquire(TxnId txn, const std::string& key, LockMode mode,
                 int64_t timeout_micros = 0);

  /// Releases every lock held by `txn` and wakes waiters.
  void ReleaseAll(TxnId txn);

  /// True if `txn` holds `key` in at least `mode`.
  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;

  /// Number of keys currently locked (any mode).
  size_t LockedKeyCount() const;

  struct Stats {
    uint64_t acquisitions = 0;
    uint64_t waits = 0;
    uint64_t deadlocks = 0;
    uint64_t timeouts = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::set<TxnId> shared;
    TxnId exclusive = 0;  // 0 = none
    bool has_exclusive() const { return exclusive != 0; }
  };

  // All guarded by mu_.
  bool Compatible(const Entry& e, TxnId txn, LockMode mode) const;
  bool WouldDeadlock(TxnId waiter, const std::string& key, LockMode mode) const;
  std::set<TxnId> HoldersBlocking(const Entry& e, TxnId txn, LockMode mode) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Entry> table_;
  std::map<TxnId, std::set<std::string>> held_;
  // waiter → the keys it is waiting on (at most one in practice).
  std::map<TxnId, std::string> waiting_on_;
  Stats stats_;
};

}  // namespace exotica::txn

#endif  // EXOTICA_TXN_LOCK_MANAGER_H_
