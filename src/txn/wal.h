// Per-site write-ahead log.
//
// The log is the site's durable medium in this substrate: Site::Crash()
// throws away the in-memory store but keeps the log; restart recovery
// rebuilds the store by redoing the updates of committed transactions in
// log order (correct under strict 2PL, where a loser's writes are never
// overwritten before its abort record).

#ifndef EXOTICA_TXN_WAL_H_
#define EXOTICA_TXN_WAL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/value.h"

namespace exotica::txn {

enum class WalRecordType : int {
  kBegin = 0,
  kUpdate = 1,  ///< key, before image, after image
  kCommit = 2,
  kAbort = 3,
  kPrepare = 4, ///< 2PC vote: the site promises to commit on request
};

const char* WalRecordTypeName(WalRecordType type);

struct WalRecord {
  uint64_t lsn = 0;
  uint64_t txn = 0;
  WalRecordType type = WalRecordType::kBegin;
  std::string key;
  data::Value before;
  data::Value after;
};

/// \brief Append-only in-memory log with a durability boundary.
class WriteAheadLog {
 public:
  /// Appends and returns the record's LSN.
  uint64_t Append(WalRecord record);

  std::vector<WalRecord> ReadAll() const;
  uint64_t size() const;

  /// Rebuilds a store image: redo updates of committed transactions in
  /// log order. Losers (aborted or in-flight at crash) are skipped;
  /// prepared-but-unresolved transactions are treated as losers
  /// (presumed abort). Deleted keys (after == null) are removed.
  std::map<std::string, data::Value> Replay() const;

  /// Transactions with a PREPARE but neither COMMIT nor ABORT — the
  /// in-doubt set a 2PC coordinator would have to resolve after a crash.
  std::vector<uint64_t> InDoubt() const;

 private:
  mutable std::mutex mu_;
  std::vector<WalRecord> records_;
};

}  // namespace exotica::txn

#endif  // EXOTICA_TXN_WAL_H_
