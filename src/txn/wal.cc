#include "txn/wal.h"

#include <set>

namespace exotica::txn {

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kBegin: return "BEGIN";
    case WalRecordType::kUpdate: return "UPDATE";
    case WalRecordType::kCommit: return "COMMIT";
    case WalRecordType::kAbort: return "ABORT";
    case WalRecordType::kPrepare: return "PREPARE";
  }
  return "?";
}

uint64_t WriteAheadLog::Append(WalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = records_.size();
  uint64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

std::vector<WalRecord> WriteAheadLog::ReadAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t WriteAheadLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<uint64_t> WriteAheadLog::InDoubt() const {
  std::vector<WalRecord> log = ReadAll();
  std::set<uint64_t> prepared, resolved;
  for (const WalRecord& r : log) {
    if (r.type == WalRecordType::kPrepare) prepared.insert(r.txn);
    if (r.type == WalRecordType::kCommit || r.type == WalRecordType::kAbort) {
      resolved.insert(r.txn);
    }
  }
  std::vector<uint64_t> out;
  for (uint64_t t : prepared) {
    if (resolved.count(t) == 0) out.push_back(t);
  }
  return out;
}

std::map<std::string, data::Value> WriteAheadLog::Replay() const {
  std::vector<WalRecord> log = ReadAll();
  std::set<uint64_t> committed;
  for (const WalRecord& r : log) {
    if (r.type == WalRecordType::kCommit) committed.insert(r.txn);
  }
  std::map<std::string, data::Value> store;
  for (const WalRecord& r : log) {
    if (r.type != WalRecordType::kUpdate) continue;
    if (committed.count(r.txn) == 0) continue;  // loser: skip
    if (r.after.is_null()) {
      store.erase(r.key);
    } else {
      store[r.key] = r.after;
    }
  }
  return store;
}

}  // namespace exotica::txn
