#include "txn/multidb.h"

namespace exotica::txn {

Status MultiDatabase::AddSite(const std::string& name, SiteOptions options) {
  if (name.empty()) {
    return Status::InvalidArgument("site name may not be empty");
  }
  if (sites_.count(name) > 0) {
    return Status::AlreadyExists("site already exists: " + name);
  }
  sites_.emplace(name, std::make_unique<Site>(name, options));
  order_.push_back(name);
  return Status::OK();
}

Result<Site*> MultiDatabase::site(const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    return Status::NotFound("no such site: " + name);
  }
  return it->second.get();
}

std::vector<std::string> MultiDatabase::SiteNames() const { return order_; }

SiteStats MultiDatabase::AggregateStats() const {
  SiteStats agg;
  for (const auto& [name, site] : sites_) {
    (void)name;
    SiteStats s = site->stats();
    agg.begins += s.begins;
    agg.prepares += s.prepares;
    agg.commits += s.commits;
    agg.aborts += s.aborts;
    agg.unilateral_aborts += s.unilateral_aborts;
    agg.reads += s.reads;
    agg.writes += s.writes;
    agg.restarts += s.restarts;
  }
  return agg;
}

}  // namespace exotica::txn
