// Site: one autonomous local database of the multidatabase environment.
//
// Each site offers serializable ACID transactions over a key-value store
// (strict 2PL + WAL). Sites are autonomous: they can unilaterally abort a
// transaction at commit (fault injection) and they share nothing — there
// is deliberately *no* global commit protocol across sites, which is the
// environment flexible transactions were designed for (paper §4.2:
// "Since a local database can unilaterally abort a transaction, it is not
// possible to enforce the commit semantics of global transactions").

#ifndef EXOTICA_TXN_SITE_H_
#define EXOTICA_TXN_SITE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/value.h"
#include "txn/lock_manager.h"
#include "txn/wal.h"

namespace exotica::txn {

class Site;

/// \brief Site tuning.
struct SiteOptions {
  /// Lock wait timeout; 0 waits forever (deadlock detection still applies).
  int64_t lock_timeout_micros = 1000000;  // 1s
};

/// \brief Aggregate site counters.
struct SiteStats {
  uint64_t begins = 0;
  uint64_t prepares = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;           ///< explicit + unilateral + failed ops
  uint64_t unilateral_aborts = 0;///< injected at commit
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t restarts = 0;
};

/// \brief A transaction handle. Obtain via Site::Begin; single-threaded
/// use per handle. The handle must be committed or aborted before
/// destruction (the destructor aborts as a safety net).
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  bool active() const { return state_ == State::kActive; }

  /// Reads `key` under a shared lock. Null value for an absent key.
  Result<data::Value> Get(const std::string& key);

  /// Writes `key` under an exclusive lock (WAL first, then store).
  Status Put(const std::string& key, const data::Value& value);

  /// Removes `key` under an exclusive lock.
  Status Erase(const std::string& key);

  /// 2PC phase-1 vote: the site either promises to commit (OK; the
  /// unilateral-abort window closes) or refuses (kAborted; the
  /// transaction is rolled back). Fault injection that would have struck
  /// at commit strikes here instead.
  Status Prepare();

  bool prepared() const { return state_ == State::kPrepared; }

  /// Commits. For unprepared transactions the site may unilaterally abort
  /// here (injected faults); a prepared transaction always commits.
  Status Commit();

  /// Rolls back every write and releases locks.
  Status Abort();

 private:
  friend class Site;
  Transaction(Site* site, TxnId id) : site_(site), id_(id) {}

  enum class State { kActive, kPrepared, kCommitted, kAborted };

  Status CheckActive() const;
  void RollbackLocked();  // undo writes; caller holds site store mutex

  Site* site_;
  TxnId id_;
  uint64_t epoch_ = 0;  ///< site crash epoch at Begin; stale handles abort
  State state_ = State::kActive;
  /// Undo list: (key, before image) in write order.
  std::vector<std::pair<std::string, data::Value>> undo_;
};

/// \brief One local database.
class Site {
 public:
  explicit Site(std::string name, SiteOptions options = {});

  const std::string& name() const { return name_; }

  /// Starts a transaction.
  std::unique_ptr<Transaction> Begin();

  /// Reads the current committed value outside any transaction (test and
  /// bench inspection; takes no locks, so only meaningful at quiescence).
  Result<data::Value> ReadCommitted(const std::string& key) const;

  /// Number of keys present.
  size_t KeyCount() const;

  // --- fault injection -------------------------------------------------------

  /// Every commit fails unilaterally with probability `p` (seeded).
  void SetCommitFailureRate(double p, uint64_t seed = 42);

  /// The next `n` commits fail unilaterally (deterministic injection;
  /// takes precedence over the probabilistic rate).
  void FailNextCommits(int n) { forced_failures_ = n; }

  // --- crash / restart ---------------------------------------------------------

  /// Power failure: the volatile store vanishes; the WAL survives. Any
  /// live transaction handle becomes unusable (operations return
  /// kAborted). Call Restart() before new transactions.
  void Crash();

  /// Restart recovery: rebuilds the store from the WAL.
  Status Restart();

  SiteStats stats() const;
  const WriteAheadLog& wal() const { return wal_; }
  LockManager& locks() { return locks_; }

 private:
  friend class Transaction;

  /// Consumes one injected fault if armed (forced or probabilistic).
  bool DrawInjectedFault();

  std::string name_;
  SiteOptions options_;

  mutable std::mutex store_mu_;
  std::map<std::string, data::Value> store_;
  bool crashed_ = false;
  uint64_t crash_epoch_ = 0;

  LockManager locks_;
  WriteAheadLog wal_;

  std::atomic<TxnId> next_txn_{1};

  mutable std::mutex stats_mu_;
  SiteStats stats_;

  std::mutex fault_mu_;
  double commit_failure_rate_ = 0.0;
  Rng fault_rng_{42};
  int forced_failures_ = 0;
};

}  // namespace exotica::txn

#endif  // EXOTICA_TXN_SITE_H_
