// MultiDatabase: a federation of autonomous sites.
//
// Deliberately provides NO atomic commitment across sites — that absence
// is the problem flexible transactions (and, in this paper's argument,
// workflow processes) exist to work around.

#ifndef EXOTICA_TXN_MULTIDB_H_
#define EXOTICA_TXN_MULTIDB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "txn/site.h"

namespace exotica::txn {

/// \brief Named collection of autonomous sites.
class MultiDatabase {
 public:
  Status AddSite(const std::string& name, SiteOptions options = {});
  Result<Site*> site(const std::string& name);
  bool HasSite(const std::string& name) const { return sites_.count(name) > 0; }
  std::vector<std::string> SiteNames() const;

  /// Sum of per-site stats.
  SiteStats AggregateStats() const;

 private:
  std::map<std::string, std::unique_ptr<Site>> sites_;
  std::vector<std::string> order_;
};

}  // namespace exotica::txn

#endif  // EXOTICA_TXN_MULTIDB_H_
