#include "txn/site.h"

namespace exotica::txn {

// --- Transaction -------------------------------------------------------------

Transaction::~Transaction() {
  if (state_ == State::kActive || state_ == State::kPrepared) {
    (void)Abort();  // presumed abort for unresolved transactions
  }
}

Status Transaction::CheckActive() const {
  if (state_ != State::kActive) {
    return Status::FailedPrecondition("transaction " + std::to_string(id_) +
                                      " is no longer active");
  }
  std::lock_guard<std::mutex> lock(site_->store_mu_);
  if (site_->crashed_ || site_->crash_epoch_ != epoch_) {
    return Status::Aborted("site " + site_->name_ +
                           " crashed since this transaction began");
  }
  return Status::OK();
}

Result<data::Value> Transaction::Get(const std::string& key) {
  EXO_RETURN_NOT_OK(CheckActive());
  Status st = site_->locks_.Acquire(id_, key, LockMode::kShared,
                                    site_->options_.lock_timeout_micros);
  if (!st.ok()) {
    (void)Abort();
    return st;
  }
  std::lock_guard<std::mutex> lock(site_->store_mu_);
  {
    std::lock_guard<std::mutex> slock(site_->stats_mu_);
    ++site_->stats_.reads;
  }
  auto it = site_->store_.find(key);
  return it == site_->store_.end() ? data::Value::Null() : it->second;
}

Status Transaction::Put(const std::string& key, const data::Value& value) {
  EXO_RETURN_NOT_OK(CheckActive());
  Status st = site_->locks_.Acquire(id_, key, LockMode::kExclusive,
                                    site_->options_.lock_timeout_micros);
  if (!st.ok()) {
    (void)Abort();
    return st;
  }
  std::lock_guard<std::mutex> lock(site_->store_mu_);
  auto it = site_->store_.find(key);
  data::Value before =
      it == site_->store_.end() ? data::Value::Null() : it->second;
  WalRecord r;
  r.txn = id_;
  r.type = WalRecordType::kUpdate;
  r.key = key;
  r.before = before;
  r.after = value;
  site_->wal_.Append(std::move(r));
  undo_.emplace_back(key, std::move(before));
  site_->store_[key] = value;
  {
    std::lock_guard<std::mutex> slock(site_->stats_mu_);
    ++site_->stats_.writes;
  }
  return Status::OK();
}

Status Transaction::Erase(const std::string& key) {
  EXO_RETURN_NOT_OK(CheckActive());
  Status st = site_->locks_.Acquire(id_, key, LockMode::kExclusive,
                                    site_->options_.lock_timeout_micros);
  if (!st.ok()) {
    (void)Abort();
    return st;
  }
  std::lock_guard<std::mutex> lock(site_->store_mu_);
  auto it = site_->store_.find(key);
  data::Value before =
      it == site_->store_.end() ? data::Value::Null() : it->second;
  WalRecord r;
  r.txn = id_;
  r.type = WalRecordType::kUpdate;
  r.key = key;
  r.before = before;
  r.after = data::Value::Null();
  site_->wal_.Append(std::move(r));
  undo_.emplace_back(key, std::move(before));
  site_->store_.erase(key);
  {
    std::lock_guard<std::mutex> slock(site_->stats_mu_);
    ++site_->stats_.writes;
  }
  return Status::OK();
}

void Transaction::RollbackLocked() {
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    if (it->second.is_null()) {
      site_->store_.erase(it->first);
    } else {
      site_->store_[it->first] = it->second;
    }
  }
  undo_.clear();
}

Status Transaction::Prepare() {
  EXO_RETURN_NOT_OK(CheckActive());
  // The vote is where an autonomous site can still say no.
  if (site_->DrawInjectedFault()) {
    {
      std::lock_guard<std::mutex> lock(site_->store_mu_);
      WalRecord r;
      r.txn = id_;
      r.type = WalRecordType::kAbort;
      site_->wal_.Append(std::move(r));
      RollbackLocked();
    }
    state_ = State::kAborted;
    site_->locks_.ReleaseAll(id_);
    {
      std::lock_guard<std::mutex> slock(site_->stats_mu_);
      ++site_->stats_.aborts;
      ++site_->stats_.unilateral_aborts;
    }
    return Status::Aborted("site " + site_->name_ + " voted NO for transaction " +
                           std::to_string(id_));
  }
  {
    std::lock_guard<std::mutex> lock(site_->store_mu_);
    WalRecord r;
    r.txn = id_;
    r.type = WalRecordType::kPrepare;
    site_->wal_.Append(std::move(r));
  }
  state_ = State::kPrepared;
  {
    std::lock_guard<std::mutex> slock(site_->stats_mu_);
    ++site_->stats_.prepares;
  }
  return Status::OK();
}

Status Transaction::Commit() {
  if (state_ != State::kActive && state_ != State::kPrepared) {
    return Status::FailedPrecondition("transaction " + std::to_string(id_) +
                                      " is no longer active");
  }
  {
    std::lock_guard<std::mutex> lock(site_->store_mu_);
    if (site_->crashed_ || site_->crash_epoch_ != epoch_) {
      return Status::Aborted("site " + site_->name_ +
                             " crashed since this transaction began");
    }
  }

  // Unilateral-abort injection happens at the commit point for unprepared
  // transactions; a prepared transaction has already promised.
  bool fail = state_ == State::kActive && site_->DrawInjectedFault();
  if (fail) {
    {
      std::lock_guard<std::mutex> lock(site_->store_mu_);
      WalRecord r;
      r.txn = id_;
      r.type = WalRecordType::kAbort;
      site_->wal_.Append(std::move(r));
      RollbackLocked();
    }
    state_ = State::kAborted;
    site_->locks_.ReleaseAll(id_);
    {
      std::lock_guard<std::mutex> slock(site_->stats_mu_);
      ++site_->stats_.aborts;
      ++site_->stats_.unilateral_aborts;
    }
    return Status::Aborted("site " + site_->name_ +
                           " unilaterally aborted transaction " +
                           std::to_string(id_));
  }

  {
    std::lock_guard<std::mutex> lock(site_->store_mu_);
    WalRecord r;
    r.txn = id_;
    r.type = WalRecordType::kCommit;
    site_->wal_.Append(std::move(r));
  }
  state_ = State::kCommitted;
  site_->locks_.ReleaseAll(id_);
  {
    std::lock_guard<std::mutex> slock(site_->stats_mu_);
    ++site_->stats_.commits;
  }
  return Status::OK();
}

Status Transaction::Abort() {
  if (state_ != State::kActive && state_ != State::kPrepared) {
    return Status::FailedPrecondition("transaction " + std::to_string(id_) +
                                      " is no longer active");
  }
  {
    std::lock_guard<std::mutex> lock(site_->store_mu_);
    if (!site_->crashed_) {
      WalRecord r;
      r.txn = id_;
      r.type = WalRecordType::kAbort;
      site_->wal_.Append(std::move(r));
      RollbackLocked();
    }
  }
  state_ = State::kAborted;
  site_->locks_.ReleaseAll(id_);
  {
    std::lock_guard<std::mutex> slock(site_->stats_mu_);
    ++site_->stats_.aborts;
  }
  return Status::OK();
}

// --- Site ---------------------------------------------------------------------

Site::Site(std::string name, SiteOptions options)
    : name_(std::move(name)), options_(options) {}

std::unique_ptr<Transaction> Site::Begin() {
  TxnId id = next_txn_.fetch_add(1);
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    WalRecord r;
    r.txn = id;
    r.type = WalRecordType::kBegin;
    wal_.Append(std::move(r));
    epoch = crash_epoch_;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.begins;
  }
  auto txn = std::unique_ptr<Transaction>(new Transaction(this, id));
  txn->epoch_ = epoch;
  return txn;
}

Result<data::Value> Site::ReadCommitted(const std::string& key) const {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (crashed_) {
    return Status::FailedPrecondition("site " + name_ +
                                      " is crashed; Restart() first");
  }
  auto it = store_.find(key);
  return it == store_.end() ? data::Value::Null() : it->second;
}

size_t Site::KeyCount() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_.size();
}

bool Site::DrawInjectedFault() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (forced_failures_ > 0) {
    --forced_failures_;
    return true;
  }
  return commit_failure_rate_ > 0.0 &&
         fault_rng_.Bernoulli(commit_failure_rate_);
}

void Site::SetCommitFailureRate(double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  commit_failure_rate_ = p;
  fault_rng_ = Rng(seed);
}

void Site::Crash() {
  std::lock_guard<std::mutex> lock(store_mu_);
  store_.clear();
  crashed_ = true;
  ++crash_epoch_;
}

Status Site::Restart() {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (!crashed_) {
    return Status::FailedPrecondition("site " + name_ + " is not crashed");
  }
  store_ = wal_.Replay();
  crashed_ = false;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.restarts;
  }
  return Status::OK();
}

SiteStats Site::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace exotica::txn
