#include "txn/lock_manager.h"

#include <chrono>

namespace exotica::txn {

bool LockManager::Compatible(const Entry& e, TxnId txn, LockMode mode) const {
  if (mode == LockMode::kShared) {
    return !e.has_exclusive() || e.exclusive == txn;
  }
  // Exclusive: no other holder of any kind.
  if (e.has_exclusive() && e.exclusive != txn) return false;
  for (TxnId holder : e.shared) {
    if (holder != txn) return false;
  }
  return true;
}

std::set<TxnId> LockManager::HoldersBlocking(const Entry& e, TxnId txn,
                                             LockMode mode) const {
  std::set<TxnId> out;
  if (e.has_exclusive() && e.exclusive != txn) out.insert(e.exclusive);
  if (mode == LockMode::kExclusive) {
    for (TxnId holder : e.shared) {
      if (holder != txn) out.insert(holder);
    }
  }
  return out;
}

bool LockManager::WouldDeadlock(TxnId waiter, const std::string& key,
                                LockMode mode) const {
  // DFS over the waits-for graph starting from the transactions that block
  // `waiter` on `key`; a path back to `waiter` closes a cycle.
  auto entry_it = table_.find(key);
  if (entry_it == table_.end()) return false;
  std::vector<TxnId> frontier;
  for (TxnId t : HoldersBlocking(entry_it->second, waiter, mode)) {
    frontier.push_back(t);
  }
  std::set<TxnId> seen;
  while (!frontier.empty()) {
    TxnId t = frontier.back();
    frontier.pop_back();
    if (t == waiter) return true;
    if (!seen.insert(t).second) continue;
    auto w = waiting_on_.find(t);
    if (w == waiting_on_.end()) continue;
    auto e = table_.find(w->second);
    if (e == table_.end()) continue;
    // What is t waiting for? Conservatively treat as exclusive intent; the
    // blockers are a superset, which can only report deadlock earlier.
    for (TxnId blocker : HoldersBlocking(e->second, t, LockMode::kExclusive)) {
      frontier.push_back(blocker);
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const std::string& key, LockMode mode,
                            int64_t timeout_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_micros);
  while (true) {
    // Re-fetch on every pass: ReleaseAll erases emptied entries, so a
    // reference must never be held across a wait.
    Entry& e = table_[key];
    if (Compatible(e, txn, mode)) {
      waiting_on_.erase(txn);
      if (mode == LockMode::kExclusive) {
        e.shared.erase(txn);  // upgrade
        e.exclusive = txn;
      } else if (e.exclusive != txn) {
        e.shared.insert(txn);
      }
      held_[txn].insert(key);
      ++stats_.acquisitions;
      return Status::OK();
    }
    if (WouldDeadlock(txn, key, mode)) {
      ++stats_.deadlocks;
      return Status::Deadlock("txn " + std::to_string(txn) +
                              " would deadlock waiting for key " + key);
    }
    ++stats_.waits;
    waiting_on_[txn] = key;
    if (timeout_micros > 0) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        waiting_on_.erase(txn);
        ++stats_.timeouts;
        return Status::Timeout("txn " + std::to_string(txn) +
                               " timed out waiting for key " + key);
      }
    } else {
      cv_.wait(lock);
    }
    waiting_on_.erase(txn);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const std::string& key : it->second) {
    auto e = table_.find(key);
    if (e == table_.end()) continue;
    e->second.shared.erase(txn);
    if (e->second.exclusive == txn) e->second.exclusive = 0;
    if (e->second.shared.empty() && !e->second.has_exclusive()) {
      table_.erase(e);
    }
  }
  held_.erase(it);
  waiting_on_.erase(txn);
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, const std::string& key, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto e = table_.find(key);
  if (e == table_.end()) return false;
  if (e->second.exclusive == txn) return true;
  return mode == LockMode::kShared && e->second.shared.count(txn) > 0;
}

size_t LockManager::LockedKeyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

LockManager::Stats LockManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace exotica::txn
