// Two-phase commit coordinator.
//
// The paper's §4.2 premise is that real multidatabases CANNOT run an
// atomic commitment protocol across autonomous sites — which is why
// flexible transactions (and, in the paper's argument, workflows) exist.
// This coordinator implements presumed-abort 2PC for the cooperative
// case, as the baseline the models are compared against: it shows what
// the models give up (atomicity) and what they gain (no blocking votes,
// no in-doubt windows).

#ifndef EXOTICA_TXN_TPC_H_
#define EXOTICA_TXN_TPC_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "txn/multidb.h"

namespace exotica::txn {

/// \brief One branch of a global transaction: which site, and the work.
struct TpcBranch {
  std::string site;
  std::function<Status(Transaction&)> body;
};

/// \brief Outcome of a global transaction.
struct TpcOutcome {
  bool committed = false;
  /// Index of the branch whose body failed or whose site voted NO; -1 on
  /// a clean commit.
  int failed_branch = -1;
};

/// \brief Presumed-abort two-phase commit across sites of a federation.
class TwoPhaseCommit {
 public:
  explicit TwoPhaseCommit(MultiDatabase* multidb) : multidb_(multidb) {}

  /// Runs every branch, then PREPARE on all sites, then COMMIT on all
  /// (or ABORT everywhere as soon as a body fails or a site votes NO).
  /// Either every branch's effects are installed or none are.
  Result<TpcOutcome> Execute(const std::vector<TpcBranch>& branches);

  struct Stats {
    uint64_t globals_started = 0;
    uint64_t globals_committed = 0;
    uint64_t globals_aborted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  MultiDatabase* multidb_;
  Stats stats_;
};

}  // namespace exotica::txn

#endif  // EXOTICA_TXN_TPC_H_
