// Worklists (paper §3.3): "Regular users interact with the system using
// worklists. ... the same activity may appear in several worklists
// simultaneously, however, as soon as a user selects that activity for
// execution, it disappears from all other worklists."

#ifndef EXOTICA_ORG_WORKLIST_H_
#define EXOTICA_ORG_WORKLIST_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "org/directory.h"

namespace exotica::org {

using WorkItemId = uint64_t;

enum class WorkItemState : int {
  kPosted = 0,   ///< visible on every eligible person's worklist
  kClaimed = 1,  ///< selected by one person; withdrawn from the others
  kDone = 2,     ///< completed
  kCancelled = 3 ///< withdrawn by the engine (e.g. dead path)
};

const char* WorkItemStateName(WorkItemState s);

/// \brief One manual activity instance awaiting a user.
struct WorkItem {
  WorkItemId id = 0;
  std::string process_instance;  ///< engine instance id (opaque here)
  std::string activity;          ///< activity name
  std::string role;              ///< role it was assigned to
  std::vector<std::string> eligible;  ///< resolved staff at post time
  WorkItemState state = WorkItemState::kPosted;
  std::string claimed_by;
  Micros posted_at = 0;
  Micros deadline = 0;           ///< 0 = none
  std::string notify_role;
  bool notified = false;
};

/// \brief A notification raised when a work item passes its deadline.
struct Notification {
  WorkItemId item = 0;
  std::string activity;
  std::vector<std::string> recipients;
  Micros raised_at = 0;
};

/// \brief Posts work items, maintains per-person worklists, enforces
/// claim-withdrawal semantics, raises deadline notifications.
class WorklistService {
 public:
  explicit WorklistService(const Directory* directory, const Clock* clock)
      : directory_(directory), clock_(clock) {}

  /// Posts a work item for `activity` assigned to `role`. Staff resolution
  /// happens here; a role that resolves to nobody is an error surfaced to
  /// the engine (the process would stall forever otherwise).
  Result<WorkItemId> Post(const std::string& process_instance,
                          const std::string& activity, const std::string& role,
                          Micros deadline = 0, std::string notify_role = "");

  /// Items currently visible to `person`: posted items they are eligible
  /// for plus items they have claimed.
  std::vector<const WorkItem*> WorklistOf(const std::string& person) const;

  /// Claims the item for `person`; it disappears from all other worklists.
  /// FailedPrecondition if not posted; InvalidArgument if not eligible.
  Status Claim(WorkItemId id, const std::string& person);

  /// Returns a claimed item to every eligible worklist.
  Status Release(WorkItemId id, const std::string& person);

  /// Marks a claimed item done. The engine drives the actual execution.
  Status Complete(WorkItemId id, const std::string& person);

  /// Engine-side withdrawal (activity died by dead path elimination).
  Status Cancel(WorkItemId id);

  Result<const WorkItem*> Find(WorkItemId id) const;

  /// Scans deadlines; raises (once per item) a notification to the resolved
  /// members of the item's notify role. Returns the new notifications.
  std::vector<Notification> CheckDeadlines();

  const std::vector<Notification>& notifications() const {
    return notifications_;
  }

  /// Count of items in the given state.
  size_t Count(WorkItemState state) const;

 private:
  const Directory* directory_;
  const Clock* clock_;
  std::map<WorkItemId, WorkItem> items_;
  std::vector<Notification> notifications_;
  WorkItemId next_id_ = 1;
};

}  // namespace exotica::org

#endif  // EXOTICA_ORG_WORKLIST_H_
