// Organization model (paper §3.3): persons, roles, hierarchy levels.
//
// "A person can have several roles – manager, programmer, assistant – and
// a role can be assigned to several persons. When activities are defined,
// the workflow designer must specify who is responsible for the execution
// of the activity."

#ifndef EXOTICA_ORG_DIRECTORY_H_
#define EXOTICA_ORG_DIRECTORY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace exotica::org {

/// \brief A member of the organization.
struct Person {
  std::string name;
  int level = 0;                 ///< hierarchy level (0 = staff, higher = up)
  std::set<std::string> roles;
  std::string manager;           ///< name of the manager; empty for the top
  bool absent = false;           ///< on vacation / unavailable
  std::string substitute;        ///< receives this person's work when absent
};

/// \brief A role persons can hold and activities can be assigned to.
struct Role {
  std::string name;
  std::string description;
};

/// \brief The organization directory.
class Directory {
 public:
  Status AddRole(const std::string& name, std::string description = "");
  bool HasRole(const std::string& name) const { return roles_.count(name) > 0; }

  Status AddPerson(const std::string& name, int level,
                   const std::vector<std::string>& roles,
                   const std::string& manager = "");
  bool HasPerson(const std::string& name) const {
    return persons_.count(name) > 0;
  }
  Result<const Person*> FindPerson(const std::string& name) const;

  /// Adds / removes a role from a person. Both must exist.
  Status GrantRole(const std::string& person, const std::string& role);
  Status RevokeRole(const std::string& person, const std::string& role);

  Status SetAbsent(const std::string& person, bool absent,
                   const std::string& substitute = "");
  Status SetManager(const std::string& person, const std::string& manager);

  /// Everyone holding `role` directly, present or not.
  std::vector<std::string> MembersOfRole(const std::string& role) const;

  /// Staff resolution for an activity assigned to `role`: present members
  /// of the role; each absent member is replaced by their substitute chain
  /// (if the substitute is absent too, their substitute, etc.; cycles and
  /// dead ends drop the member). Duplicates removed, order deterministic
  /// (directory order). NotFound if the role does not exist; an existing
  /// role may still resolve to nobody.
  Result<std::vector<std::string>> ResolveStaff(const std::string& role) const;

  /// Everyone at hierarchy level >= `level`.
  std::vector<std::string> PersonsAtOrAbove(int level) const;

  std::vector<std::string> PersonNames() const;
  std::vector<std::string> RoleNames() const;

 private:
  std::map<std::string, Person> persons_;
  std::vector<std::string> person_order_;
  std::map<std::string, Role> roles_;
  std::vector<std::string> role_order_;
};

}  // namespace exotica::org

#endif  // EXOTICA_ORG_DIRECTORY_H_
