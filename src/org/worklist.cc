#include "org/worklist.h"

#include <algorithm>

namespace exotica::org {

const char* WorkItemStateName(WorkItemState s) {
  switch (s) {
    case WorkItemState::kPosted: return "posted";
    case WorkItemState::kClaimed: return "claimed";
    case WorkItemState::kDone: return "done";
    case WorkItemState::kCancelled: return "cancelled";
  }
  return "?";
}

Result<WorkItemId> WorklistService::Post(const std::string& process_instance,
                                         const std::string& activity,
                                         const std::string& role,
                                         Micros deadline,
                                         std::string notify_role) {
  EXO_ASSIGN_OR_RETURN(std::vector<std::string> eligible,
                       directory_->ResolveStaff(role));
  if (eligible.empty()) {
    return Status::FailedPrecondition(
        "role " + role + " resolves to nobody; activity " + activity +
        " can never be executed");
  }
  WorkItem item;
  item.id = next_id_++;
  item.process_instance = process_instance;
  item.activity = activity;
  item.role = role;
  item.eligible = std::move(eligible);
  item.posted_at = clock_->NowMicros();
  item.deadline = deadline == 0 ? 0 : item.posted_at + deadline;
  item.notify_role = std::move(notify_role);
  WorkItemId id = item.id;
  items_.emplace(id, std::move(item));
  return id;
}

std::vector<const WorkItem*> WorklistService::WorklistOf(
    const std::string& person) const {
  std::vector<const WorkItem*> out;
  for (const auto& [id, item] : items_) {
    (void)id;
    if (item.state == WorkItemState::kPosted) {
      if (std::find(item.eligible.begin(), item.eligible.end(), person) !=
          item.eligible.end()) {
        out.push_back(&item);
      }
    } else if (item.state == WorkItemState::kClaimed &&
               item.claimed_by == person) {
      out.push_back(&item);
    }
  }
  return out;
}

Status WorklistService::Claim(WorkItemId id, const std::string& person) {
  auto it = items_.find(id);
  if (it == items_.end()) {
    return Status::NotFound("no such work item: " + std::to_string(id));
  }
  WorkItem& item = it->second;
  if (item.state != WorkItemState::kPosted) {
    return Status::FailedPrecondition(
        "work item " + std::to_string(id) + " is " +
        WorkItemStateName(item.state) + ", not posted");
  }
  if (std::find(item.eligible.begin(), item.eligible.end(), person) ==
      item.eligible.end()) {
    return Status::InvalidArgument(person + " is not eligible for work item " +
                                   std::to_string(id));
  }
  item.state = WorkItemState::kClaimed;
  item.claimed_by = person;
  return Status::OK();
}

Status WorklistService::Release(WorkItemId id, const std::string& person) {
  auto it = items_.find(id);
  if (it == items_.end()) {
    return Status::NotFound("no such work item: " + std::to_string(id));
  }
  WorkItem& item = it->second;
  if (item.state != WorkItemState::kClaimed || item.claimed_by != person) {
    return Status::FailedPrecondition("work item " + std::to_string(id) +
                                      " is not claimed by " + person);
  }
  item.state = WorkItemState::kPosted;
  item.claimed_by.clear();
  return Status::OK();
}

Status WorklistService::Complete(WorkItemId id, const std::string& person) {
  auto it = items_.find(id);
  if (it == items_.end()) {
    return Status::NotFound("no such work item: " + std::to_string(id));
  }
  WorkItem& item = it->second;
  if (item.state != WorkItemState::kClaimed || item.claimed_by != person) {
    return Status::FailedPrecondition("work item " + std::to_string(id) +
                                      " is not claimed by " + person);
  }
  item.state = WorkItemState::kDone;
  return Status::OK();
}

Status WorklistService::Cancel(WorkItemId id) {
  auto it = items_.find(id);
  if (it == items_.end()) {
    return Status::NotFound("no such work item: " + std::to_string(id));
  }
  WorkItem& item = it->second;
  if (item.state == WorkItemState::kDone) {
    return Status::FailedPrecondition("work item " + std::to_string(id) +
                                      " already completed");
  }
  item.state = WorkItemState::kCancelled;
  return Status::OK();
}

Result<const WorkItem*> WorklistService::Find(WorkItemId id) const {
  auto it = items_.find(id);
  if (it == items_.end()) {
    return Status::NotFound("no such work item: " + std::to_string(id));
  }
  return &it->second;
}

std::vector<Notification> WorklistService::CheckDeadlines() {
  std::vector<Notification> fresh;
  Micros now = clock_->NowMicros();
  for (auto& [id, item] : items_) {
    if (item.notified || item.deadline == 0 || now < item.deadline) continue;
    if (item.state != WorkItemState::kPosted &&
        item.state != WorkItemState::kClaimed) {
      continue;
    }
    Notification n;
    n.item = id;
    n.activity = item.activity;
    n.raised_at = now;
    if (!item.notify_role.empty()) {
      auto staff = directory_->ResolveStaff(item.notify_role);
      if (staff.ok()) n.recipients = std::move(staff).value();
    }
    item.notified = true;
    notifications_.push_back(n);
    fresh.push_back(std::move(n));
  }
  return fresh;
}

size_t WorklistService::Count(WorkItemState state) const {
  size_t n = 0;
  for (const auto& [id, item] : items_) {
    (void)id;
    if (item.state == state) ++n;
  }
  return n;
}

}  // namespace exotica::org
