#include "org/directory.h"

#include <algorithm>

namespace exotica::org {

Status Directory::AddRole(const std::string& name, std::string description) {
  if (name.empty()) {
    return Status::InvalidArgument("role name may not be empty");
  }
  if (roles_.count(name) > 0) {
    return Status::AlreadyExists("role already exists: " + name);
  }
  roles_.emplace(name, Role{name, std::move(description)});
  role_order_.push_back(name);
  return Status::OK();
}

Status Directory::AddPerson(const std::string& name, int level,
                            const std::vector<std::string>& roles,
                            const std::string& manager) {
  if (name.empty()) {
    return Status::InvalidArgument("person name may not be empty");
  }
  if (persons_.count(name) > 0) {
    return Status::AlreadyExists("person already exists: " + name);
  }
  Person p;
  p.name = name;
  p.level = level;
  for (const std::string& r : roles) {
    if (!HasRole(r)) {
      return Status::NotFound("person " + name + " assigned unknown role " + r);
    }
    p.roles.insert(r);
  }
  if (!manager.empty() && !HasPerson(manager)) {
    return Status::NotFound("person " + name + " reports to unknown manager " +
                            manager);
  }
  p.manager = manager;
  persons_.emplace(name, std::move(p));
  person_order_.push_back(name);
  return Status::OK();
}

Result<const Person*> Directory::FindPerson(const std::string& name) const {
  auto it = persons_.find(name);
  if (it == persons_.end()) {
    return Status::NotFound("unknown person: " + name);
  }
  return &it->second;
}

Status Directory::GrantRole(const std::string& person, const std::string& role) {
  auto it = persons_.find(person);
  if (it == persons_.end()) return Status::NotFound("unknown person: " + person);
  if (!HasRole(role)) return Status::NotFound("unknown role: " + role);
  it->second.roles.insert(role);
  return Status::OK();
}

Status Directory::RevokeRole(const std::string& person, const std::string& role) {
  auto it = persons_.find(person);
  if (it == persons_.end()) return Status::NotFound("unknown person: " + person);
  it->second.roles.erase(role);
  return Status::OK();
}

Status Directory::SetAbsent(const std::string& person, bool absent,
                            const std::string& substitute) {
  auto it = persons_.find(person);
  if (it == persons_.end()) return Status::NotFound("unknown person: " + person);
  if (!substitute.empty() && !HasPerson(substitute)) {
    return Status::NotFound("unknown substitute: " + substitute);
  }
  if (!substitute.empty() && substitute == person) {
    return Status::InvalidArgument("a person may not substitute for themselves");
  }
  it->second.absent = absent;
  it->second.substitute = substitute;
  return Status::OK();
}

Status Directory::SetManager(const std::string& person,
                             const std::string& manager) {
  auto it = persons_.find(person);
  if (it == persons_.end()) return Status::NotFound("unknown person: " + person);
  if (!manager.empty() && !HasPerson(manager)) {
    return Status::NotFound("unknown manager: " + manager);
  }
  it->second.manager = manager;
  return Status::OK();
}

std::vector<std::string> Directory::MembersOfRole(const std::string& role) const {
  std::vector<std::string> out;
  for (const std::string& name : person_order_) {
    if (persons_.at(name).roles.count(role) > 0) out.push_back(name);
  }
  return out;
}

Result<std::vector<std::string>> Directory::ResolveStaff(
    const std::string& role) const {
  if (!HasRole(role)) {
    return Status::NotFound("staff resolution against unknown role: " + role);
  }
  std::vector<std::string> out;
  auto add_unique = [&](const std::string& name) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  };
  for (const std::string& name : MembersOfRole(role)) {
    // Follow the substitution chain with a cycle guard.
    std::set<std::string> seen;
    const Person* p = &persons_.at(name);
    while (p->absent) {
      if (p->substitute.empty() || seen.count(p->substitute) > 0) {
        p = nullptr;  // dead end or cycle: nobody stands in
        break;
      }
      seen.insert(p->substitute);
      auto it = persons_.find(p->substitute);
      if (it == persons_.end()) {
        p = nullptr;
        break;
      }
      p = &it->second;
    }
    if (p != nullptr) add_unique(p->name);
  }
  return out;
}

std::vector<std::string> Directory::PersonsAtOrAbove(int level) const {
  std::vector<std::string> out;
  for (const std::string& name : person_order_) {
    if (persons_.at(name).level >= level) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Directory::PersonNames() const { return person_order_; }
std::vector<std::string> Directory::RoleNames() const { return role_order_; }

}  // namespace exotica::org
