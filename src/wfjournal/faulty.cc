#include "wfjournal/faulty.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace exotica::wfjournal {

Status FaultyJournal::RawWrite(const std::string& bytes) {
  // After a segment rotation the legacy constructor path is a stale
  // (possibly deleted) segment; the bytes a torn write would clobber live
  // in the inner journal's active segment.
  std::string target = inner_->active_path();
  if (target.empty()) target = path_;
  if (target.empty()) {
    return Status::InvalidArgument(
        "FaultyJournal byte-level fault needs a file path");
  }
  int fd = ::open(target.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("FaultyJournal cannot open " + target + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("FaultyJournal raw write to " + target +
                             " failed: " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::OK();
}

Result<uint64_t> FaultyJournal::TruncateBefore(uint64_t seq) {
  uint64_t index = truncates_++;
  if (truncate_armed_ && index == fail_truncate_at_) {
    ++injected_;
    // Not forwarded: every pre-snapshot segment survives, exactly the
    // state a crash between snapshot flush and truncation leaves.
    return Status::IOError("injected truncate failure at truncate " +
                           std::to_string(index));
  }
  return inner_->TruncateBefore(seq);
}

Status FaultyJournal::Append(Record record) {
  uint64_t index = appends_++;
  if (!append_armed_ || index != fail_append_at_) {
    return inner_->Append(std::move(record));
  }
  ++injected_;
  switch (append_mode_) {
    case FaultMode::kAppendError:
      return Status::IOError("injected write failure (ENOSPC) at append " +
                             std::to_string(index));
    case FaultMode::kShortWrite: {
      // Flush what came before so the file looks like a real crash: every
      // earlier record whole, then a prefix of this one.
      EXO_RETURN_NOT_OK(inner_->Flush());
      record.seq = inner_->size();
      std::string line = record.Encode();
      EXO_RETURN_NOT_OK(RawWrite(line.substr(0, line.size() / 2)));
      return Status::IOError("injected short write at append " +
                             std::to_string(index));
    }
    case FaultMode::kGarbage: {
      EXO_RETURN_NOT_OK(inner_->Flush());
      EXO_RETURN_NOT_OK(RawWrite("\x7f!!corrupt-block!!\x01\x02\x03\n"));
      // The write that clobbered the log was not the journal's own, so the
      // append itself still succeeds.
      return inner_->Append(std::move(record));
    }
  }
  return Status::Internal("unreachable");
}

Status FaultyJournal::Flush() {
  uint64_t index = flushes_++;
  if (flush_armed_ && index == fail_flush_at_) {
    ++injected_;
    // Not forwarded: buffered records stay buffered, as after EIO from
    // fsync. (A FileJournal still flushes them in its destructor; data
    // loss is modelled with kAppendError / kShortWrite instead.)
    return Status::IOError("injected fsync failure at flush " +
                           std::to_string(index));
  }
  return inner_->Flush();
}

}  // namespace exotica::wfjournal
