// Navigation journal: the persistence layer behind the paper's forward
// recovery guarantee (§3.3: "the execution of a process is persistent in
// the sense that forward recovery is always guaranteed ... Once the
// failures have been repaired, the process execution is resumed from the
// point where the failure occurred").
//
// The engine appends one record per navigation state transition. After a
// crash, Engine::Recover replays the journal to rebuild every in-flight
// instance. Activities that were started but not finished are re-run from
// the beginning — the at-least-once caveat the paper spells out.
//
// FileJournal group-commits: appends accumulate in an in-memory arena and
// reach the file in one write() per Flush() (the engine flushes at every
// navigation quiescence point). fsync_each requests write-through: each
// record is written and fsynced individually, preserving the strongest
// durability setting exactly.
//
// Long-lived engines checkpoint: a kSnapshot record carries the full set
// of live-instance images, and everything behind it can be discarded.
// FileJournal supports this with segment files — the base path is the
// initial segment (starting at seq 0), RotateSegment() starts a fresh
// `path.<seq>` file, and TruncateBefore(seq) unlinks segments that lie
// wholly behind `seq`. Sequence numbers stay monotonic across rotation
// and truncation, so a truncated journal replays exactly like the
// untruncated one minus the dropped prefix. See
// docs/specs/snapshot_recovery.md.

#ifndef EXOTICA_WFJOURNAL_JOURNAL_H_
#define EXOTICA_WFJOURNAL_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace exotica::wfjournal {

enum class EventType : int {
  kInstanceStart = 0,      ///< payload = process name; extra = input image
  kActivityReady = 1,
  kActivityStarted = 2,    ///< flag unused; payload = attempt number
  kActivityFinished = 3,   ///< payload = output container image
  kActivityTerminated = 4,
  kActivityRescheduled = 5,///< exit condition false
  kActivityDead = 6,       ///< dead path elimination
  kConnectorEval = 7,      ///< activity=from, to=to, flag=value
  kInstanceFinished = 8,   ///< payload = output container image
  kChildSpawned = 9,       ///< activity = block activity; payload = child id
  kInstanceSuspended = 10,
  kInstanceResumed = 11,
  kInstanceCancelled = 12, ///< user-initiated termination
  kInstanceFailed = 13,    ///< retry budget exhausted / permanent failure;
                           ///< payload = failure reason
  kInstanceDetached = 14,  ///< instance migrated away (work stealing);
                           ///< payload = full instance-family image, so a
                           ///< handoff that never reached the adopter's
                           ///< journal can be re-adopted after recovery
  kInstanceAdopted = 15,   ///< instance migrated in; payload = the same
                           ///< family image — makes the adopter's journal
                           ///< self-contained for replay
  kSnapshot = 16,          ///< engine checkpoint; payload = one escaped
                           ///< family image per line for every live
                           ///< instance; extra = next-instance counter.
                           ///< Replay resets the engine to exactly this
                           ///< state; records behind it are redundant.
};

const char* EventTypeName(EventType type);

/// \brief One journal record.
struct Record {
  uint64_t seq = 0;            ///< assigned by the journal on append
  std::string instance;        ///< process instance id
  EventType type = EventType::kInstanceStart;
  std::string activity;        ///< activity (or connector source)
  std::string to;              ///< connector target
  bool flag = false;           ///< connector evaluation result
  std::string payload;         ///< container image / process name / child id
  std::string extra;           ///< second payload (instance input image)

  /// Tab-separated single-line encoding (payloads escaped).
  std::string Encode() const;
  /// Appends the encoding to `out` (no newline); lets appenders reuse one
  /// buffer instead of allocating a string per record.
  void EncodeTo(std::string* out) const;
  static Result<Record> Decode(const std::string& line);
};

/// \brief Append-only record sink + replay source.
class Journal {
 public:
  virtual ~Journal() = default;

  /// Appends `record` (seq is assigned, monotonically increasing). The
  /// record may be buffered until Flush(); with fsync_each it is durable
  /// on return.
  virtual Status Append(Record record) = 0;

  /// Pushes buffered appends to the backing store (group commit). No-op
  /// for journals that write through.
  virtual Status Flush() { return Status::OK(); }

  /// All retained records, in append order (includes buffered appends).
  virtual Result<std::vector<Record>> ReadAll() const = 0;

  /// Streams every retained record, in append order, through `visitor`
  /// without materializing a copy of the journal. Stops and returns the
  /// visitor's status on the first non-OK result.
  using RecordVisitor = std::function<Status(const Record&)>;
  virtual Status Visit(const RecordVisitor& visitor) const = 0;

  /// Sequence number the next append will get (== total records ever
  /// appended, including any later truncated away).
  virtual uint64_t size() const = 0;

  /// Starts a fresh backing segment so the next record appended is the
  /// first of its segment — called right before a snapshot record so
  /// TruncateBefore(snapshot seq) can drop every earlier segment whole.
  /// No-op for journals without segmented storage.
  virtual Status RotateSegment() { return Status::OK(); }

  /// Discards storage for records with seq < `seq` where that can be done
  /// in whole units (FileJournal: whole segment files; MemoryJournal:
  /// individual records). Returns how many records were dropped. Never
  /// touches the active segment.
  virtual Result<uint64_t> TruncateBefore(uint64_t seq) {
    (void)seq;
    return static_cast<uint64_t>(0);
  }

  /// Seq of the oldest record still retained (0 when nothing was ever
  /// truncated).
  virtual uint64_t first_seq() const { return 0; }

  /// Path of the file appends currently land in; empty for journals
  /// without file-backed storage. Fault injectors use this to corrupt the
  /// bytes a torn write would actually hit.
  virtual std::string active_path() const { return {}; }
};

/// \brief Volatile journal for tests and benchmarks.
class MemoryJournal : public Journal {
 public:
  Status Append(Record record) override;
  Result<std::vector<Record>> ReadAll() const override;
  Status Visit(const RecordVisitor& visitor) const override;
  uint64_t size() const override { return base_seq_ + records_.size(); }
  Result<uint64_t> TruncateBefore(uint64_t seq) override;
  uint64_t first_seq() const override { return base_seq_; }

  /// Simulates a crash that loses every record with seq >= `keep` — used
  /// by the recovery tests to explore "failure at every navigation step".
  void TruncateTo(uint64_t keep);

 private:
  std::vector<Record> records_;
  /// Seq of records_[0]; nonzero once TruncateBefore dropped a prefix.
  uint64_t base_seq_ = 0;
};

/// \brief File-backed journal (one encoded record per line), optionally
/// split across segment files by RotateSegment/TruncateBefore.
class FileJournal : public Journal {
 public:
  /// Opens (creating if necessary) the base file plus any `path.<seq>`
  /// segments and scans them in seq order to restore the counters. A torn
  /// final record in the *active* (last) segment — a crash mid-write of a
  /// group-committed batch — is truncated away; a torn or malformed
  /// record anywhere else is Corruption.
  static Result<std::unique_ptr<FileJournal>> Open(const std::string& path,
                                                   bool fsync_each = false);
  ~FileJournal() override;

  Status Append(Record record) override;
  Status Flush() override;
  Result<std::vector<Record>> ReadAll() const override;
  Status Visit(const RecordVisitor& visitor) const override;
  uint64_t size() const override { return next_seq_; }
  Status RotateSegment() override;
  Result<uint64_t> TruncateBefore(uint64_t seq) override;
  uint64_t first_seq() const override { return first_seq_; }
  std::string active_path() const override { return segments_.back().path; }

  /// Number of live segment files (≥ 1).
  size_t segment_count() const { return segments_.size(); }

 private:
  /// One backing file holding records [start, next segment's start).
  struct Segment {
    uint64_t start = 0;
    std::string path;
  };

  FileJournal(std::string path, bool fsync_each)
      : path_(std::move(path)), fsync_each_(fsync_each) {}

  /// Discovers existing segment files for path_ (the base file is the
  /// seq-0 segment when present) and orders them by start seq.
  Status LoadSegments();

  /// One write() for everything pending. Const so readers can flush
  /// before scanning the file (pending_ is the only thing mutated).
  Status FlushPending() const;

  /// Streams one segment's records through `visitor` (which may be null).
  /// `expect` carries the required next seq across segments. Reports the
  /// byte offset just past the last well-formed record; a torn tail stops
  /// the scan without error iff `allow_torn` (the active segment).
  Status ScanSegment(const Segment& segment, bool allow_torn,
                     const RecordVisitor& visitor, uint64_t* expect,
                     uint64_t* good_end) const;

  /// Buffered bytes beyond which Append flushes on its own, bounding arena
  /// growth between quiescence points.
  static constexpr size_t kAutoFlushBytes = 1 << 18;

  std::string path_;
  bool fsync_each_;
  int fd_ = -1;  ///< open on the active (last) segment
  uint64_t next_seq_ = 0;
  uint64_t first_seq_ = 0;
  std::vector<Segment> segments_;
  /// Group-commit arena: encoded records waiting for Flush().
  mutable std::string pending_;
};

}  // namespace exotica::wfjournal

#endif  // EXOTICA_WFJOURNAL_JOURNAL_H_
