// Navigation journal: the persistence layer behind the paper's forward
// recovery guarantee (§3.3: "the execution of a process is persistent in
// the sense that forward recovery is always guaranteed ... Once the
// failures have been repaired, the process execution is resumed from the
// point where the failure occurred").
//
// The engine appends one record per navigation state transition. After a
// crash, Engine::Recover replays the journal to rebuild every in-flight
// instance. Activities that were started but not finished are re-run from
// the beginning — the at-least-once caveat the paper spells out.
//
// FileJournal group-commits: appends accumulate in an in-memory arena and
// reach the file in one write() per Flush() (the engine flushes at every
// navigation quiescence point). fsync_each requests write-through: each
// record is written and fsynced individually, preserving the strongest
// durability setting exactly.

#ifndef EXOTICA_WFJOURNAL_JOURNAL_H_
#define EXOTICA_WFJOURNAL_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace exotica::wfjournal {

enum class EventType : int {
  kInstanceStart = 0,      ///< payload = process name; extra = input image
  kActivityReady = 1,
  kActivityStarted = 2,    ///< flag unused; payload = attempt number
  kActivityFinished = 3,   ///< payload = output container image
  kActivityTerminated = 4,
  kActivityRescheduled = 5,///< exit condition false
  kActivityDead = 6,       ///< dead path elimination
  kConnectorEval = 7,      ///< activity=from, to=to, flag=value
  kInstanceFinished = 8,   ///< payload = output container image
  kChildSpawned = 9,       ///< activity = block activity; payload = child id
  kInstanceSuspended = 10,
  kInstanceResumed = 11,
  kInstanceCancelled = 12, ///< user-initiated termination
  kInstanceFailed = 13,    ///< retry budget exhausted / permanent failure;
                           ///< payload = failure reason
  kInstanceDetached = 14,  ///< instance migrated away (work stealing);
                           ///< payload = full instance-family image, so a
                           ///< handoff that never reached the adopter's
                           ///< journal can be re-adopted after recovery
  kInstanceAdopted = 15,   ///< instance migrated in; payload = the same
                           ///< family image — makes the adopter's journal
                           ///< self-contained for replay
};

const char* EventTypeName(EventType type);

/// \brief One journal record.
struct Record {
  uint64_t seq = 0;            ///< assigned by the journal on append
  std::string instance;        ///< process instance id
  EventType type = EventType::kInstanceStart;
  std::string activity;        ///< activity (or connector source)
  std::string to;              ///< connector target
  bool flag = false;           ///< connector evaluation result
  std::string payload;         ///< container image / process name / child id
  std::string extra;           ///< second payload (instance input image)

  /// Tab-separated single-line encoding (payloads escaped).
  std::string Encode() const;
  /// Appends the encoding to `out` (no newline); lets appenders reuse one
  /// buffer instead of allocating a string per record.
  void EncodeTo(std::string* out) const;
  static Result<Record> Decode(const std::string& line);
};

/// \brief Append-only record sink + replay source.
class Journal {
 public:
  virtual ~Journal() = default;

  /// Appends `record` (seq is assigned, monotonically increasing). The
  /// record may be buffered until Flush(); with fsync_each it is durable
  /// on return.
  virtual Status Append(Record record) = 0;

  /// Pushes buffered appends to the backing store (group commit). No-op
  /// for journals that write through.
  virtual Status Flush() { return Status::OK(); }

  /// All records, in append order (includes buffered appends).
  virtual Result<std::vector<Record>> ReadAll() const = 0;

  /// Streams every record, in append order, through `visitor` without
  /// materializing a copy of the journal. Stops and returns the visitor's
  /// status on the first non-OK result.
  using RecordVisitor = std::function<Status(const Record&)>;
  virtual Status Visit(const RecordVisitor& visitor) const = 0;

  /// Number of records appended so far.
  virtual uint64_t size() const = 0;
};

/// \brief Volatile journal for tests and benchmarks.
class MemoryJournal : public Journal {
 public:
  Status Append(Record record) override;
  Result<std::vector<Record>> ReadAll() const override;
  Status Visit(const RecordVisitor& visitor) const override;
  uint64_t size() const override { return records_.size(); }

  /// Simulates a crash that loses every record after `keep` — used by the
  /// recovery tests to explore "failure at every navigation step".
  void TruncateTo(uint64_t keep);

 private:
  std::vector<Record> records_;
};

/// \brief File-backed journal (one encoded record per line).
class FileJournal : public Journal {
 public:
  /// Opens (creating if necessary) and scans the file to restore seq. A
  /// torn final record — a crash mid-write of a group-committed batch —
  /// is truncated away; anything else malformed is Corruption.
  static Result<std::unique_ptr<FileJournal>> Open(const std::string& path,
                                                   bool fsync_each = false);
  ~FileJournal() override;

  Status Append(Record record) override;
  Status Flush() override;
  Result<std::vector<Record>> ReadAll() const override;
  Status Visit(const RecordVisitor& visitor) const override;
  uint64_t size() const override { return next_seq_; }

 private:
  FileJournal(std::string path, bool fsync_each)
      : path_(std::move(path)), fsync_each_(fsync_each) {}

  /// One write() for everything pending. Const so readers can flush
  /// before scanning the file (pending_ is the only thing mutated).
  Status FlushPending() const;

  /// Streams the file's records through `visitor` (which may be null).
  /// Reports the byte offset just past the last well-formed record and
  /// the record count; a torn tail stops the scan without error.
  Status ScanFile(const RecordVisitor& visitor, uint64_t* good_end,
                  uint64_t* count) const;

  /// Buffered bytes beyond which Append flushes on its own, bounding arena
  /// growth between quiescence points.
  static constexpr size_t kAutoFlushBytes = 1 << 18;

  std::string path_;
  bool fsync_each_;
  int fd_ = -1;
  uint64_t next_seq_ = 0;
  /// Group-commit arena: encoded records waiting for Flush().
  mutable std::string pending_;
};

}  // namespace exotica::wfjournal

#endif  // EXOTICA_WFJOURNAL_JOURNAL_H_
