#include "wfjournal/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/strings.h"

namespace exotica::wfjournal {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kInstanceStart: return "INSTANCE_START";
    case EventType::kActivityReady: return "READY";
    case EventType::kActivityStarted: return "STARTED";
    case EventType::kActivityFinished: return "FINISHED";
    case EventType::kActivityTerminated: return "TERMINATED";
    case EventType::kActivityRescheduled: return "RESCHEDULED";
    case EventType::kActivityDead: return "DEAD";
    case EventType::kConnectorEval: return "CONNECTOR";
    case EventType::kInstanceFinished: return "INSTANCE_FINISHED";
    case EventType::kChildSpawned: return "CHILD";
    case EventType::kInstanceSuspended: return "SUSPENDED";
    case EventType::kInstanceResumed: return "RESUMED";
    case EventType::kInstanceCancelled: return "CANCELLED";
    case EventType::kInstanceFailed: return "FAILED";
    case EventType::kInstanceDetached: return "DETACHED";
    case EventType::kInstanceAdopted: return "ADOPTED";
    case EventType::kSnapshot: return "SNAPSHOT";
  }
  return "?";
}

void Record::EncodeTo(std::string* out) const {
  *out += std::to_string(seq);
  *out += '\t';
  *out += std::to_string(static_cast<int>(type));
  *out += '\t';
  *out += instance;
  *out += '\t';
  *out += activity;
  *out += '\t';
  *out += to;
  *out += '\t';
  *out += flag ? '1' : '0';
  *out += '\t';
  *out += EscapeQuoted(payload);
  *out += '\t';
  *out += EscapeQuoted(extra);
}

std::string Record::Encode() const {
  std::string out;
  EncodeTo(&out);
  return out;
}

Result<Record> Record::Decode(const std::string& line) {
  std::vector<std::string> fields = Split(line, '\t');
  if (fields.size() != 8) {
    return Status::Corruption("journal record has " +
                              std::to_string(fields.size()) +
                              " fields, want 8: " + line);
  }
  Record r;
  char* end = nullptr;
  r.seq = std::strtoull(fields[0].c_str(), &end, 10);
  if (end != fields[0].c_str() + fields[0].size()) {
    return Status::Corruption("bad seq in journal record: " + line);
  }
  long type_val = std::strtol(fields[1].c_str(), &end, 10);
  if (end != fields[1].c_str() + fields[1].size() || type_val < 0 ||
      type_val > static_cast<long>(EventType::kSnapshot)) {
    return Status::Corruption("bad type in journal record: " + line);
  }
  r.type = static_cast<EventType>(type_val);
  r.instance = fields[2];
  r.activity = fields[3];
  r.to = fields[4];
  if (fields[5] != "0" && fields[5] != "1") {
    return Status::Corruption("bad flag in journal record: " + line);
  }
  r.flag = fields[5] == "1";
  if (!UnescapeQuoted(fields[6], &r.payload)) {
    return Status::Corruption("bad payload escape in journal record: " + line);
  }
  if (!UnescapeQuoted(fields[7], &r.extra)) {
    return Status::Corruption("bad extra escape in journal record: " + line);
  }
  return r;
}

Status MemoryJournal::Append(Record record) {
  record.seq = base_seq_ + records_.size();
  records_.push_back(std::move(record));
  return Status::OK();
}

Result<std::vector<Record>> MemoryJournal::ReadAll() const { return records_; }

Status MemoryJournal::Visit(const RecordVisitor& visitor) const {
  for (const Record& r : records_) {
    EXO_RETURN_NOT_OK(visitor(r));
  }
  return Status::OK();
}

Result<uint64_t> MemoryJournal::TruncateBefore(uint64_t seq) {
  if (seq <= base_seq_) return static_cast<uint64_t>(0);
  uint64_t cut = std::min<uint64_t>(seq, base_seq_ + records_.size());
  uint64_t dropped = cut - base_seq_;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(dropped));
  base_seq_ = cut;
  return dropped;
}

void MemoryJournal::TruncateTo(uint64_t keep) {
  if (keep <= base_seq_) {
    records_.clear();
  } else if (keep - base_seq_ < records_.size()) {
    records_.resize(keep - base_seq_);
  }
}

Result<std::unique_ptr<FileJournal>> FileJournal::Open(const std::string& path,
                                                       bool fsync_each) {
  auto journal = std::unique_ptr<FileJournal>(new FileJournal(path, fsync_each));
  EXO_RETURN_NOT_OK(journal->LoadSegments());
  // Scan existing content to restore the sequence counters and verify
  // integrity of what is already there. A torn tail in the active segment
  // (crash mid-batch) is cut off so subsequent appends start at a record
  // boundary; damage anywhere behind it is corruption.
  uint64_t expect = journal->segments_.front().start;
  journal->first_seq_ = expect;
  for (size_t i = 0; i < journal->segments_.size(); ++i) {
    const Segment& seg = journal->segments_[i];
    bool active = i + 1 == journal->segments_.size();
    if (seg.start != expect) {
      return Status::Corruption("journal segment " + seg.path +
                                " starts at seq " + std::to_string(seg.start) +
                                " want " + std::to_string(expect));
    }
    uint64_t good_end = 0;
    EXO_RETURN_NOT_OK(
        journal->ScanSegment(seg, active, nullptr, &expect, &good_end));
    if (active) {
      std::ifstream probe(seg.path, std::ios::binary | std::ios::ate);
      if (probe.is_open() &&
          static_cast<uint64_t>(probe.tellg()) > good_end &&
          ::truncate(seg.path.c_str(), static_cast<off_t>(good_end)) != 0) {
        return Status::IOError("cannot truncate torn journal tail in " +
                               seg.path + ": " + std::strerror(errno));
      }
    }
  }
  journal->next_seq_ = expect;
  const std::string& active_file = journal->segments_.back().path;
  journal->fd_ =
      ::open(active_file.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (journal->fd_ < 0) {
    return Status::IOError("cannot open journal " + active_file + ": " +
                           std::strerror(errno));
  }
  return journal;
}

Status FileJournal::LoadSegments() {
  segments_.clear();
  {
    std::ifstream probe(path_, std::ios::binary);
    if (probe.is_open()) segments_.push_back({0, path_});
  }
  // Rotation files live next to the base path as `<base>.<startseq>`.
  size_t slash = path_.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path_.substr(0, slash);
  std::string base =
      slash == std::string::npos ? path_ : path_.substr(slash + 1);
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (!StartsWith(name, base + ".")) continue;
      std::string suffix = name.substr(base.size() + 1);
      if (suffix.empty() ||
          suffix.find_first_not_of("0123456789") != std::string::npos) {
        continue;  // unrelated sibling (e.g. a fleet shard "journal.e1")
      }
      segments_.push_back(
          {std::strtoull(suffix.c_str(), nullptr, 10), dir + "/" + name});
    }
    ::closedir(d);
  }
  if (segments_.empty()) segments_.push_back({0, path_});
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return Status::OK();
}

FileJournal::~FileJournal() {
  if (fd_ >= 0) {
    (void)FlushPending().ok();
    ::close(fd_);
  }
}

Status FileJournal::Append(Record record) {
  record.seq = next_seq_;
  if (fsync_each_) {
    // Write-through: flush anything buffered first so ordering holds, then
    // write and fsync this record individually.
    EXO_RETURN_NOT_OK(FlushPending());
    std::string line;
    record.EncodeTo(&line);
    line += '\n';
    ssize_t n = ::write(fd_, line.data(), line.size());
    if (n != static_cast<ssize_t>(line.size())) {
      return Status::IOError("short write to journal " + active_path() + ": " +
                             std::strerror(errno));
    }
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync failed on journal " + active_path() +
                             ": " + std::strerror(errno));
    }
    ++next_seq_;
    return Status::OK();
  }
  record.EncodeTo(&pending_);
  pending_ += '\n';
  ++next_seq_;
  if (pending_.size() >= kAutoFlushBytes) return FlushPending();
  return Status::OK();
}

Status FileJournal::Flush() { return FlushPending(); }

Status FileJournal::RotateSegment() {
  EXO_RETURN_NOT_OK(FlushPending());
  // Rotating twice with nothing in between would reuse the same file name;
  // the still-empty active segment already satisfies the contract.
  if (segments_.back().start == next_seq_) return Status::OK();
  if (fsync_each_ && ::fsync(fd_) != 0) {
    return Status::IOError("fsync failed on journal " + active_path() + ": " +
                           std::strerror(errno));
  }
  std::string path = path_ + "." + std::to_string(next_seq_);
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open journal segment " + path + ": " +
                           std::strerror(errno));
  }
  ::close(fd_);
  fd_ = fd;
  segments_.push_back({next_seq_, std::move(path)});
  return Status::OK();
}

Result<uint64_t> FileJournal::TruncateBefore(uint64_t seq) {
  uint64_t dropped = 0;
  // A segment is droppable when the *next* segment starts at or before
  // `seq` — every record it holds is then < seq. The active segment is
  // never dropped.
  while (segments_.size() > 1 && segments_[1].start <= seq) {
    if (::unlink(segments_.front().path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("cannot unlink journal segment " +
                             segments_.front().path + ": " +
                             std::strerror(errno));
    }
    dropped += segments_[1].start - segments_.front().start;
    segments_.erase(segments_.begin());
  }
  first_seq_ = segments_.front().start;
  return dropped;
}

Status FileJournal::FlushPending() const {
  if (pending_.empty()) return Status::OK();
  size_t off = 0;
  while (off < pending_.size()) {
    ssize_t n = ::write(fd_, pending_.data() + off, pending_.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("short write to journal " + active_path() + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  pending_.clear();
  return Status::OK();
}

Status FileJournal::ScanSegment(const Segment& segment, bool allow_torn,
                                const RecordVisitor& visitor, uint64_t* expect,
                                uint64_t* good_end) const {
  *good_end = 0;
  std::ifstream in(segment.path);
  if (!in.is_open()) return Status::OK();  // no file yet: empty segment
  std::string line;
  uint64_t offset = 0;
  while (std::getline(in, line)) {
    // getline hits EOF exactly when the line had no trailing newline — a
    // record cut off mid-write.
    bool terminated = !in.eof();
    if (line.empty()) {
      if (terminated) offset += 1;
      continue;
    }
    Result<Record> r = Record::Decode(line);
    if (!r.ok() || !terminated) {
      if (!allow_torn) {
        return r.ok() ? Status::Corruption("journal segment " + segment.path +
                                           " has a torn tail behind the "
                                           "active segment")
                      : r.status();
      }
      if (!r.ok()) {
        // Only the final record may be torn; garbage with well-formed
        // lines after it is corruption, not a crash artifact.
        std::string rest;
        while (std::getline(in, rest)) {
          if (!rest.empty()) return r.status();
        }
      }
      break;
    }
    if (r->seq != *expect) {
      return Status::Corruption("journal " + segment.path + " seq gap: got " +
                                std::to_string(r->seq) + " want " +
                                std::to_string(*expect));
    }
    ++*expect;
    offset += line.size() + 1;
    if (visitor) EXO_RETURN_NOT_OK(visitor(*r));
  }
  *good_end = offset;
  return Status::OK();
}

Result<std::vector<Record>> FileJournal::ReadAll() const {
  std::vector<Record> out;
  EXO_RETURN_NOT_OK(Visit([&out](const Record& r) {
    out.push_back(r);
    return Status::OK();
  }));
  return out;
}

Status FileJournal::Visit(const RecordVisitor& visitor) const {
  EXO_RETURN_NOT_OK(FlushPending());
  uint64_t expect = segments_.front().start;
  for (size_t i = 0; i < segments_.size(); ++i) {
    uint64_t good_end = 0;
    EXO_RETURN_NOT_OK(ScanSegment(segments_[i],
                                  i + 1 == segments_.size(), visitor, &expect,
                                  &good_end));
  }
  return Status::OK();
}

}  // namespace exotica::wfjournal
