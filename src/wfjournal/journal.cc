#include "wfjournal/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/strings.h"

namespace exotica::wfjournal {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kInstanceStart: return "INSTANCE_START";
    case EventType::kActivityReady: return "READY";
    case EventType::kActivityStarted: return "STARTED";
    case EventType::kActivityFinished: return "FINISHED";
    case EventType::kActivityTerminated: return "TERMINATED";
    case EventType::kActivityRescheduled: return "RESCHEDULED";
    case EventType::kActivityDead: return "DEAD";
    case EventType::kConnectorEval: return "CONNECTOR";
    case EventType::kInstanceFinished: return "INSTANCE_FINISHED";
    case EventType::kChildSpawned: return "CHILD";
    case EventType::kInstanceSuspended: return "SUSPENDED";
    case EventType::kInstanceResumed: return "RESUMED";
    case EventType::kInstanceCancelled: return "CANCELLED";
  }
  return "?";
}

std::string Record::Encode() const {
  std::string out;
  out += std::to_string(seq);
  out += '\t';
  out += std::to_string(static_cast<int>(type));
  out += '\t';
  out += instance;
  out += '\t';
  out += activity;
  out += '\t';
  out += to;
  out += '\t';
  out += flag ? '1' : '0';
  out += '\t';
  out += EscapeQuoted(payload);
  out += '\t';
  out += EscapeQuoted(extra);
  return out;
}

Result<Record> Record::Decode(const std::string& line) {
  std::vector<std::string> fields = Split(line, '\t');
  if (fields.size() != 8) {
    return Status::Corruption("journal record has " +
                              std::to_string(fields.size()) +
                              " fields, want 8: " + line);
  }
  Record r;
  char* end = nullptr;
  r.seq = std::strtoull(fields[0].c_str(), &end, 10);
  if (end != fields[0].c_str() + fields[0].size()) {
    return Status::Corruption("bad seq in journal record: " + line);
  }
  long type_val = std::strtol(fields[1].c_str(), &end, 10);
  if (end != fields[1].c_str() + fields[1].size() || type_val < 0 ||
      type_val > static_cast<long>(EventType::kInstanceCancelled)) {
    return Status::Corruption("bad type in journal record: " + line);
  }
  r.type = static_cast<EventType>(type_val);
  r.instance = fields[2];
  r.activity = fields[3];
  r.to = fields[4];
  if (fields[5] != "0" && fields[5] != "1") {
    return Status::Corruption("bad flag in journal record: " + line);
  }
  r.flag = fields[5] == "1";
  if (!UnescapeQuoted(fields[6], &r.payload)) {
    return Status::Corruption("bad payload escape in journal record: " + line);
  }
  if (!UnescapeQuoted(fields[7], &r.extra)) {
    return Status::Corruption("bad extra escape in journal record: " + line);
  }
  return r;
}

Status MemoryJournal::Append(Record record) {
  record.seq = records_.size();
  records_.push_back(std::move(record));
  return Status::OK();
}

Result<std::vector<Record>> MemoryJournal::ReadAll() const { return records_; }

void MemoryJournal::TruncateTo(uint64_t keep) {
  if (keep < records_.size()) records_.resize(keep);
}

Result<std::unique_ptr<FileJournal>> FileJournal::Open(const std::string& path,
                                                       bool fsync_each) {
  auto journal = std::unique_ptr<FileJournal>(new FileJournal(path, fsync_each));
  // Scan existing content to restore the sequence counter and verify
  // integrity of what is already there.
  EXO_ASSIGN_OR_RETURN(std::vector<Record> existing, journal->ReadAll());
  journal->next_seq_ = existing.size();
  journal->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (journal->fd_ < 0) {
    return Status::IOError("cannot open journal " + path + ": " +
                           std::strerror(errno));
  }
  return journal;
}

FileJournal::~FileJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileJournal::Append(Record record) {
  record.seq = next_seq_;
  std::string line = record.Encode();
  line += '\n';
  ssize_t n = ::write(fd_, line.data(), line.size());
  if (n != static_cast<ssize_t>(line.size())) {
    return Status::IOError("short write to journal " + path_ + ": " +
                           std::strerror(errno));
  }
  if (fsync_each_ && ::fsync(fd_) != 0) {
    return Status::IOError("fsync failed on journal " + path_ + ": " +
                           std::strerror(errno));
  }
  ++next_seq_;
  return Status::OK();
}

Result<std::vector<Record>> FileJournal::ReadAll() const {
  std::vector<Record> out;
  std::ifstream in(path_);
  if (!in.is_open()) return out;  // no file yet: empty journal
  std::string line;
  uint64_t expect = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXO_ASSIGN_OR_RETURN(Record r, Record::Decode(line));
    if (r.seq != expect) {
      return Status::Corruption("journal " + path_ + " seq gap: got " +
                                std::to_string(r.seq) + " want " +
                                std::to_string(expect));
    }
    ++expect;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace exotica::wfjournal
