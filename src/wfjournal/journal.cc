#include "wfjournal/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/strings.h"

namespace exotica::wfjournal {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kInstanceStart: return "INSTANCE_START";
    case EventType::kActivityReady: return "READY";
    case EventType::kActivityStarted: return "STARTED";
    case EventType::kActivityFinished: return "FINISHED";
    case EventType::kActivityTerminated: return "TERMINATED";
    case EventType::kActivityRescheduled: return "RESCHEDULED";
    case EventType::kActivityDead: return "DEAD";
    case EventType::kConnectorEval: return "CONNECTOR";
    case EventType::kInstanceFinished: return "INSTANCE_FINISHED";
    case EventType::kChildSpawned: return "CHILD";
    case EventType::kInstanceSuspended: return "SUSPENDED";
    case EventType::kInstanceResumed: return "RESUMED";
    case EventType::kInstanceCancelled: return "CANCELLED";
    case EventType::kInstanceFailed: return "FAILED";
    case EventType::kInstanceDetached: return "DETACHED";
    case EventType::kInstanceAdopted: return "ADOPTED";
  }
  return "?";
}

void Record::EncodeTo(std::string* out) const {
  *out += std::to_string(seq);
  *out += '\t';
  *out += std::to_string(static_cast<int>(type));
  *out += '\t';
  *out += instance;
  *out += '\t';
  *out += activity;
  *out += '\t';
  *out += to;
  *out += '\t';
  *out += flag ? '1' : '0';
  *out += '\t';
  *out += EscapeQuoted(payload);
  *out += '\t';
  *out += EscapeQuoted(extra);
}

std::string Record::Encode() const {
  std::string out;
  EncodeTo(&out);
  return out;
}

Result<Record> Record::Decode(const std::string& line) {
  std::vector<std::string> fields = Split(line, '\t');
  if (fields.size() != 8) {
    return Status::Corruption("journal record has " +
                              std::to_string(fields.size()) +
                              " fields, want 8: " + line);
  }
  Record r;
  char* end = nullptr;
  r.seq = std::strtoull(fields[0].c_str(), &end, 10);
  if (end != fields[0].c_str() + fields[0].size()) {
    return Status::Corruption("bad seq in journal record: " + line);
  }
  long type_val = std::strtol(fields[1].c_str(), &end, 10);
  if (end != fields[1].c_str() + fields[1].size() || type_val < 0 ||
      type_val > static_cast<long>(EventType::kInstanceAdopted)) {
    return Status::Corruption("bad type in journal record: " + line);
  }
  r.type = static_cast<EventType>(type_val);
  r.instance = fields[2];
  r.activity = fields[3];
  r.to = fields[4];
  if (fields[5] != "0" && fields[5] != "1") {
    return Status::Corruption("bad flag in journal record: " + line);
  }
  r.flag = fields[5] == "1";
  if (!UnescapeQuoted(fields[6], &r.payload)) {
    return Status::Corruption("bad payload escape in journal record: " + line);
  }
  if (!UnescapeQuoted(fields[7], &r.extra)) {
    return Status::Corruption("bad extra escape in journal record: " + line);
  }
  return r;
}

Status MemoryJournal::Append(Record record) {
  record.seq = records_.size();
  records_.push_back(std::move(record));
  return Status::OK();
}

Result<std::vector<Record>> MemoryJournal::ReadAll() const { return records_; }

Status MemoryJournal::Visit(const RecordVisitor& visitor) const {
  for (const Record& r : records_) {
    EXO_RETURN_NOT_OK(visitor(r));
  }
  return Status::OK();
}

void MemoryJournal::TruncateTo(uint64_t keep) {
  if (keep < records_.size()) records_.resize(keep);
}

Result<std::unique_ptr<FileJournal>> FileJournal::Open(const std::string& path,
                                                       bool fsync_each) {
  auto journal = std::unique_ptr<FileJournal>(new FileJournal(path, fsync_each));
  // Scan existing content to restore the sequence counter and verify
  // integrity of what is already there. A torn tail (crash mid-batch)
  // is cut off so subsequent appends start at a record boundary.
  uint64_t good_end = 0;
  uint64_t count = 0;
  EXO_RETURN_NOT_OK(journal->ScanFile(nullptr, &good_end, &count));
  journal->next_seq_ = count;
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (probe.is_open() &&
        static_cast<uint64_t>(probe.tellg()) > good_end &&
        ::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
      return Status::IOError("cannot truncate torn journal tail in " + path +
                             ": " + std::strerror(errno));
    }
  }
  journal->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (journal->fd_ < 0) {
    return Status::IOError("cannot open journal " + path + ": " +
                           std::strerror(errno));
  }
  return journal;
}

FileJournal::~FileJournal() {
  if (fd_ >= 0) {
    (void)FlushPending().ok();
    ::close(fd_);
  }
}

Status FileJournal::Append(Record record) {
  record.seq = next_seq_;
  if (fsync_each_) {
    // Write-through: flush anything buffered first so ordering holds, then
    // write and fsync this record individually.
    EXO_RETURN_NOT_OK(FlushPending());
    std::string line;
    record.EncodeTo(&line);
    line += '\n';
    ssize_t n = ::write(fd_, line.data(), line.size());
    if (n != static_cast<ssize_t>(line.size())) {
      return Status::IOError("short write to journal " + path_ + ": " +
                             std::strerror(errno));
    }
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync failed on journal " + path_ + ": " +
                             std::strerror(errno));
    }
    ++next_seq_;
    return Status::OK();
  }
  record.EncodeTo(&pending_);
  pending_ += '\n';
  ++next_seq_;
  if (pending_.size() >= kAutoFlushBytes) return FlushPending();
  return Status::OK();
}

Status FileJournal::Flush() { return FlushPending(); }

Status FileJournal::FlushPending() const {
  if (pending_.empty()) return Status::OK();
  size_t off = 0;
  while (off < pending_.size()) {
    ssize_t n = ::write(fd_, pending_.data() + off, pending_.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("short write to journal " + path_ + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  pending_.clear();
  return Status::OK();
}

Status FileJournal::ScanFile(const RecordVisitor& visitor, uint64_t* good_end,
                             uint64_t* count) const {
  *good_end = 0;
  *count = 0;
  std::ifstream in(path_);
  if (!in.is_open()) return Status::OK();  // no file yet: empty journal
  std::string line;
  uint64_t offset = 0;
  uint64_t expect = 0;
  while (std::getline(in, line)) {
    // getline hits EOF exactly when the line had no trailing newline — a
    // record cut off mid-write.
    bool terminated = !in.eof();
    if (line.empty()) {
      if (terminated) offset += 1;
      continue;
    }
    Result<Record> r = Record::Decode(line);
    if (!r.ok() || !terminated) {
      if (!r.ok()) {
        // Only the final record may be torn; garbage with well-formed
        // lines after it is corruption, not a crash artifact.
        std::string rest;
        while (std::getline(in, rest)) {
          if (!rest.empty()) return r.status();
        }
      }
      break;
    }
    if (r->seq != expect) {
      return Status::Corruption("journal " + path_ + " seq gap: got " +
                                std::to_string(r->seq) + " want " +
                                std::to_string(expect));
    }
    ++expect;
    offset += line.size() + 1;
    if (visitor) EXO_RETURN_NOT_OK(visitor(*r));
  }
  *good_end = offset;
  *count = expect;
  return Status::OK();
}

Result<std::vector<Record>> FileJournal::ReadAll() const {
  EXO_RETURN_NOT_OK(FlushPending());
  std::vector<Record> out;
  uint64_t good_end = 0;
  uint64_t count = 0;
  EXO_RETURN_NOT_OK(ScanFile(
      [&out](const Record& r) {
        out.push_back(r);
        return Status::OK();
      },
      &good_end, &count));
  return out;
}

Status FileJournal::Visit(const RecordVisitor& visitor) const {
  EXO_RETURN_NOT_OK(FlushPending());
  uint64_t good_end = 0;
  uint64_t count = 0;
  return ScanFile(visitor, &good_end, &count);
}

}  // namespace exotica::wfjournal
