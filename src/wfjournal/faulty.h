// Fault-injecting journal decorator: wraps any Journal and fails the Nth
// append (or flush) in a configurable way, so recovery tests can explore
// "the disk misbehaves at every possible point" instead of one hand-picked
// crash. The decorated journal stays usable as the replay source — records
// appended before the fault are intact, which is exactly the state a real
// crash leaves behind.
//
// Byte-level faults (short writes, garbage) need a real file to scribble
// on; pass the FileJournal's path and the decorator writes the torn or
// corrupt bytes raw, after flushing the inner journal so ordering on disk
// matches a genuine crash.

#ifndef EXOTICA_WFJOURNAL_FAULTY_H_
#define EXOTICA_WFJOURNAL_FAULTY_H_

#include <cstdint>
#include <string>

#include "wfjournal/journal.h"

namespace exotica::wfjournal {

/// \brief Journal decorator that injects an I/O fault at the Nth append
/// and/or the Nth flush.
class FaultyJournal : public Journal {
 public:
  enum class FaultMode : int {
    /// Append returns IOError and the record is lost (ENOSPC / EIO on
    /// write). The journal holds exactly the records appended before.
    kAppendError = 0,
    /// The record reaches the file only partially: the inner journal is
    /// flushed, then a prefix of the encoded record is written raw with no
    /// newline. Reopening the file sees a torn tail — Open() must truncate
    /// it and continue. Requires a file path.
    kShortWrite = 1,
    /// A line of garbage lands *before* the record (e.g. a misdirected
    /// write): inner flushed, junk line written raw, then the append
    /// proceeds normally. Reopening sees garbage followed by well-formed
    /// records — Open() must report Corruption. Requires a file path.
    kGarbage = 2,
  };

  /// Wraps `inner` (not owned; must outlive this). `path` is the backing
  /// file for byte-level modes; empty is fine for kAppendError.
  explicit FaultyJournal(Journal* inner, std::string path = "")
      : inner_(inner), path_(std::move(path)) {}

  /// Arms a fault at the `append_index`-th Append call (0-based).
  void FailAppendAt(uint64_t append_index, FaultMode mode) {
    append_armed_ = true;
    fail_append_at_ = append_index;
    append_mode_ = mode;
  }

  /// Arms an fsync failure at the `flush_index`-th Flush call (0-based).
  /// The flush is not forwarded, so group-committed records stay buffered;
  /// the engine sees the error at its quiescence point.
  void FailFlushAt(uint64_t flush_index) {
    flush_armed_ = true;
    fail_flush_at_ = flush_index;
  }

  /// Arms a failure at the `truncate_index`-th TruncateBefore call
  /// (0-based). The truncation is not forwarded — this models a crash
  /// after the snapshot record is durable but before the journal prefix
  /// was dropped.
  void FailTruncateAt(uint64_t truncate_index) {
    truncate_armed_ = true;
    fail_truncate_at_ = truncate_index;
  }

  uint64_t appends() const { return appends_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t truncates() const { return truncates_; }
  uint64_t faults_injected() const { return injected_; }

  Status Append(Record record) override;
  Status Flush() override;
  Result<std::vector<Record>> ReadAll() const override {
    return inner_->ReadAll();
  }
  Status Visit(const RecordVisitor& visitor) const override {
    return inner_->Visit(visitor);
  }
  uint64_t size() const override { return inner_->size(); }
  Status RotateSegment() override { return inner_->RotateSegment(); }
  Result<uint64_t> TruncateBefore(uint64_t seq) override;
  uint64_t first_seq() const override { return inner_->first_seq(); }
  std::string active_path() const override { return inner_->active_path(); }

 private:
  /// Appends `bytes` raw to the inner journal's active segment (falling
  /// back to the constructor path), bypassing the inner journal — after a
  /// rotation the torn bytes must land where the next real write would.
  Status RawWrite(const std::string& bytes);

  Journal* inner_;
  std::string path_;

  bool append_armed_ = false;
  uint64_t fail_append_at_ = 0;
  FaultMode append_mode_ = FaultMode::kAppendError;

  bool flush_armed_ = false;
  uint64_t fail_flush_at_ = 0;

  bool truncate_armed_ = false;
  uint64_t fail_truncate_at_ = 0;

  uint64_t appends_ = 0;
  uint64_t flushes_ = 0;
  uint64_t truncates_ = 0;
  uint64_t injected_ = 0;
};

}  // namespace exotica::wfjournal

#endif  // EXOTICA_WFJOURNAL_FAULTY_H_
