// Capacity planning with workflow simulation (paper §3.3 lists
// simulation among the WFMS features transaction models lack).
//
// The insurance-claim process below mixes automatic steps, a stochastic
// fraud check that routes 20% of claims to a manual investigation, and a
// manual approval. Simulation answers the staffing question — how many
// adjusters do we need to keep the 95th-percentile turnaround under a
// target? — without running a single real claim.

#include <cstdio>

#include "wf/builder.h"
#include "wfsim/sim.h"

using namespace exotica;  // NOLINT: example brevity

namespace {

Status BuildProcess(wf::DefinitionStore* store) {
  for (const char* name : {"intake", "fraud_check", "investigate", "triage",
                           "assess", "approve", "pay"}) {
    wf::ProgramDeclaration decl;
    decl.name = name;
    EXO_RETURN_NOT_OK(store->DeclareProgram(std::move(decl)));
  }
  // Intake -> FraudCheck -> [Investigate] -> Triage ->
  //   {AssessDamage, AssessLiability, ReviewCoverage}  (all adjusters)
  //   -> Approve -> Pay.
  wf::ProcessBuilder b(store, "HandleClaim");
  b.Program("Intake", "intake");
  b.Program("FraudCheck", "fraud_check");
  b.Program("Investigate", "investigate").Manual().Role("investigator");
  b.Program("Triage", "triage").OrJoin();
  b.Program("AssessDamage", "assess").Manual().Role("adjuster");
  b.Program("AssessLiability", "assess").Manual().Role("adjuster");
  b.Program("ReviewCoverage", "assess").Manual().Role("adjuster");
  b.Program("Approve", "approve").Manual().Role("adjuster");
  b.Program("Pay", "pay");
  b.Connect("Intake", "FraudCheck");
  b.Connect("FraudCheck", "Investigate", "RC <> 0");  // 20% suspicious
  b.Connect("FraudCheck", "Triage", "RC = 0");
  b.Connect("Investigate", "Triage");
  b.Connect("Triage", "AssessDamage");
  b.Connect("Triage", "AssessLiability");
  b.Connect("Triage", "ReviewCoverage");
  b.Connect("AssessDamage", "Approve");
  b.Connect("AssessLiability", "Approve");
  b.Connect("ReviewCoverage", "Approve");
  b.Connect("Approve", "Pay");
  return b.Register();
}

wfsim::SimConfig BaseConfig() {
  using wfsim::DurationModel;
  wfsim::SimConfig cfg;
  cfg.trials = 2000;
  cfg.seed = 7;
  auto minutes = [](int64_t m) { return m * 60LL * 1000 * 1000; };
  cfg.profiles["Intake"].duration = DurationModel::Fixed(minutes(2));
  cfg.profiles["FraudCheck"].duration = DurationModel::Fixed(minutes(1));
  cfg.profiles["FraudCheck"].rc_distribution = {{0, 0.8}, {1, 0.2}};
  cfg.profiles["Investigate"].duration =
      DurationModel::Exponential(minutes(240));
  for (const char* a : {"AssessDamage", "AssessLiability", "ReviewCoverage"}) {
    cfg.profiles[a].duration = DurationModel::Uniform(minutes(20), minutes(90));
  }
  cfg.profiles["Approve"].duration = DurationModel::Fixed(minutes(10));
  cfg.profiles["Pay"].duration = DurationModel::Fixed(minutes(1));
  cfg.role_capacity["investigator"] = 2;
  return cfg;
}

void PrintRow(int adjusters, const wfsim::SimResult& r) {
  auto hours = [](Micros us) {
    return static_cast<double>(us) / (3600.0 * 1000 * 1000);
  };
  const wfsim::RoleStats& adj = r.roles.at("adjuster");
  std::printf("  %9d | %8.2fh | %8.2fh | %8.2fh | %10.1fh\n", adjusters,
              hours(r.MakespanMean()), hours(r.MakespanPercentile(0.95)),
              hours(r.MakespanMax()),
              hours(adj.queue_micros) / r.trials);
}

}  // namespace

int main() {
  std::printf("== capacity planning via workflow simulation ==\n\n");
  wf::DefinitionStore store;
  Status st = BuildProcess(&store);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("claim turnaround vs. number of adjusters "
              "(2000 simulated claims each):\n\n");
  std::printf("  adjusters |     mean |      p95 |      max | avg queue\n");
  std::printf("  ----------+----------+----------+----------+-----------\n");
  for (int adjusters : {1, 2, 3, 5, 8}) {
    wfsim::SimConfig cfg = BaseConfig();
    cfg.role_capacity["adjuster"] = adjusters;
    auto r = wfsim::Simulate(store, "HandleClaim", cfg);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    PrintRow(adjusters, *r);
  }
  std::printf(
      "\n(each claim needs three parallel adjuster assessments; with one\n"
      " adjuster they serialize — the queue column shows the waiting time\n"
      " extra staff would remove)\n");
  return 0;
}
