// Travel booking as a flexible transaction (paper §4.2): prefer the
// direct flight; if the airline refuses, fall back to a train ticket
// (retriable), compensating whatever already committed along the
// abandoned path. The model is specified in the FMTM spec language,
// compiled through the Figure-5 pipeline, and executed on the workflow
// engine against autonomous sites that can refuse commits.

#include <cstdio>

#include "atm/subtxn.h"
#include "exotica/fmtm.h"
#include "exotica/programs.h"
#include "txn/multidb.h"
#include "wfrt/engine.h"

using namespace exotica;  // NOLINT: example brevity

namespace {

// PayDeposit is compensatable; BookFlight and BookHotel form the
// preferred path where BookHotel is the pivot; BookTrain is the
// guaranteed (retriable) alternative reached after compensating the
// flight if the hotel cannot be secured.
constexpr const char* kSpec = R"(
FLEXIBLE 'PlanTrip'
  SEQ
    SUB 'PayDeposit' COMPENSATABLE;
    ALT
      SEQ
        SUB 'BookFlight' COMPENSATABLE;
        SUB 'BookHotel' PIVOT;
      END
      SUB 'BookTrain' RETRIABLE;
    END
  END
END 'PlanTrip'
)";

Status SetupSubTxns(txn::MultiDatabase* mdb, atm::MultiDbRunner* runner) {
  EXO_RETURN_NOT_OK(mdb->AddSite("bank"));
  EXO_RETURN_NOT_OK(mdb->AddSite("airline"));
  EXO_RETURN_NOT_OK(mdb->AddSite("hotel"));
  EXO_RETURN_NOT_OK(mdb->AddSite("rail"));

  auto put1 = [](const char* key) {
    return [key](txn::Transaction& t) {
      return t.Put(key, data::Value(int64_t{1}));
    };
  };
  auto del = [](const char* key) {
    return [key](txn::Transaction& t) { return t.Erase(key); };
  };
  EXO_RETURN_NOT_OK(runner->Register(
      {"PayDeposit", "bank", put1("deposit"), del("deposit")}));
  EXO_RETURN_NOT_OK(runner->Register(
      {"BookFlight", "airline", put1("seat"), del("seat")}));
  EXO_RETURN_NOT_OK(
      runner->Register({"BookHotel", "hotel", put1("room"), nullptr}));
  EXO_RETURN_NOT_OK(
      runner->Register({"BookTrain", "rail", put1("ticket"), nullptr}));
  return Status::OK();
}

Status PrintState(txn::MultiDatabase* mdb) {
  for (const auto& [site_name, key] :
       std::vector<std::pair<const char*, const char*>>{
           {"bank", "deposit"},
           {"airline", "seat"},
           {"hotel", "room"},
           {"rail", "ticket"}}) {
    EXO_ASSIGN_OR_RETURN(txn::Site * site, mdb->site(site_name));
    EXO_ASSIGN_OR_RETURN(data::Value v, site->ReadCommitted(key));
    std::printf("  %-8s %-8s = %s\n", site_name, key, v.ToString().c_str());
  }
  return Status::OK();
}

Status RunOnce(bool hotel_full, int rail_flaky_commits) {
  txn::MultiDatabase mdb;
  atm::MultiDbRunner runner(&mdb);
  EXO_RETURN_NOT_OK(SetupSubTxns(&mdb, &runner));

  wf::DefinitionStore store;
  EXO_ASSIGN_OR_RETURN(exo::FmtmOutput compiled,
                       exo::CompileSpec(kSpec, &store));
  wfrt::ProgramRegistry programs;
  EXO_RETURN_NOT_OK(
      exo::BindFlexPrograms(*compiled.flex, store, &runner, &programs));

  if (hotel_full) {
    EXO_ASSIGN_OR_RETURN(txn::Site * hotel, mdb.site("hotel"));
    hotel->FailNextCommits(1);
  }
  if (rail_flaky_commits > 0) {
    EXO_ASSIGN_OR_RETURN(txn::Site * rail, mdb.site("rail"));
    rail->FailNextCommits(rail_flaky_commits);
  }

  wfrt::Engine engine(&store, &programs);
  EXO_ASSIGN_OR_RETURN(std::string id,
                       engine.RunToCompletion(compiled.root_process));
  EXO_ASSIGN_OR_RETURN(data::Container out, engine.OutputOf(id));
  std::printf("flexible transaction %s\n",
              out.Get("RC")->as_long() == 0 ? "COMMITTED" : "ABORTED");
  EXO_RETURN_NOT_OK(PrintState(&mdb));
  return Status::OK();
}

}  // namespace

int main() {
  std::printf("== travel booking as a flexible transaction ==\n");
  std::printf("\n-- run 1: preferred path (flight + hotel) --\n");
  Status st = RunOnce(false, 0);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "\n-- run 2: hotel refuses; flight compensated, train instead --\n");
  st = RunOnce(true, 0);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "\n-- run 3: hotel refuses AND the rail site is flaky (retriable "
      "booking retries until it commits) --\n");
  st = RunOnce(true, 3);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
