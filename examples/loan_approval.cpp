// Loan approval: the workflow features the paper says transaction models
// lack (§3.3) — an organization with roles and substitution, manual
// activities on worklists, claim withdrawal, deadline notifications,
// forced finishes, and forward recovery across an engine "crash".

#include <cstdio>

#include "common/clock.h"
#include "org/directory.h"
#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"

using namespace exotica;  // NOLINT: example brevity

namespace {

Status BuildDefinitions(wf::DefinitionStore* store) {
  data::StructType loan("Loan");
  EXO_RETURN_NOT_OK(loan.AddScalar("RC", data::ScalarType::kLong,
                                   data::Value(int64_t{0})));
  EXO_RETURN_NOT_OK(loan.AddScalar("Amount", data::ScalarType::kLong));
  EXO_RETURN_NOT_OK(loan.AddScalar("Approved", data::ScalarType::kLong,
                                   data::Value(int64_t{0})));
  EXO_RETURN_NOT_OK(store->types().Register(std::move(loan)));

  auto declare = [&](const char* name, const char* in, const char* out) {
    wf::ProgramDeclaration decl;
    decl.name = name;
    decl.input_type = in;
    decl.output_type = out;
    return store->DeclareProgram(std::move(decl));
  };
  EXO_RETURN_NOT_OK(declare("register_application", "Loan", "Loan"));
  EXO_RETURN_NOT_OK(declare("credit_check", "Loan", "Loan"));
  EXO_RETURN_NOT_OK(declare("human_review", "Loan", "Loan"));
  EXO_RETURN_NOT_OK(declare("disburse", "Loan", "Loan"));
  EXO_RETURN_NOT_OK(declare("send_rejection", "Loan", "Loan"));

  wf::ProcessBuilder b(store, "LoanApproval");
  b.Description("register -> credit check -> human review -> disburse/reject");
  b.InputType("Loan");
  b.OutputType("Loan");
  b.Program("Register", "register_application").Containers("Loan", "Loan");
  b.Program("CreditCheck", "credit_check").Containers("Loan", "Loan");
  b.Program("Review", "human_review").Containers("Loan", "Loan")
      .Manual().Role("loan_officer")
      .NotifyAfter(60LL * 1000 * 1000, "branch_manager");
  b.Program("Disburse", "disburse").Containers("Loan", "Loan");
  b.Program("Reject", "send_rejection").Containers("Loan", "Loan");
  b.Connect("Register", "CreditCheck", "RC = 0");
  b.Connect("CreditCheck", "Review", "RC = 0");
  b.Connect("Review", "Disburse", "Approved = 1");
  b.Otherwise("Review", "Reject");
  b.MapFromInput("Register", {{"Amount", "Amount"}});
  b.MapData("Register", "CreditCheck", {{"Amount", "Amount"}});
  b.MapData("CreditCheck", "Review", {{"Amount", "Amount"}});
  b.MapToOutput("Review", {{"Approved", "Approved"}});
  return b.Register();
}

Status BindPrograms(wfrt::ProgramRegistry* programs) {
  auto pass_through = [](const data::Container& in, data::Container* out,
                         const wfrt::ProgramContext& ctx) -> Status {
    EXO_ASSIGN_OR_RETURN(data::Value amount, in.Get("Amount"));
    if (!amount.is_null()) EXO_RETURN_NOT_OK(out->Set("Amount", amount));
    std::printf("  [program] %s ran (by %s)\n", ctx.activity.c_str(),
                ctx.person.empty() ? "system" : ctx.person.c_str());
    return out->Set("RC", data::Value(int64_t{0}));
  };
  EXO_RETURN_NOT_OK(programs->Bind("register_application", pass_through));
  EXO_RETURN_NOT_OK(programs->Bind("credit_check", pass_through));
  EXO_RETURN_NOT_OK(programs->Bind("disburse", pass_through));
  EXO_RETURN_NOT_OK(programs->Bind("send_rejection", pass_through));
  // The human review: approves anything under 10000.
  EXO_RETURN_NOT_OK(programs->Bind(
      "human_review",
      [](const data::Container& in, data::Container* out,
         const wfrt::ProgramContext& ctx) -> Status {
        EXO_ASSIGN_OR_RETURN(data::Value amount, in.Get("Amount"));
        int64_t approved = amount.as_long() < 10000 ? 1 : 0;
        std::printf("  [review] %s reviews amount %lld -> %s\n",
                    ctx.person.c_str(),
                    static_cast<long long>(amount.as_long()),
                    approved ? "APPROVE" : "REJECT");
        EXO_RETURN_NOT_OK(out->Set("Approved", data::Value(approved)));
        return out->Set("RC", data::Value(int64_t{0}));
      }));
  return Status::OK();
}

Status BuildOrganization(org::Directory* dir) {
  EXO_RETURN_NOT_OK(dir->AddRole("loan_officer"));
  EXO_RETURN_NOT_OK(dir->AddRole("branch_manager"));
  EXO_RETURN_NOT_OK(dir->AddPerson("maria", 2, {"branch_manager"}));
  EXO_RETURN_NOT_OK(dir->AddPerson("ann", 1, {"loan_officer"}, "maria"));
  EXO_RETURN_NOT_OK(dir->AddPerson("bob", 1, {"loan_officer"}, "maria"));
  return Status::OK();
}

Status Run() {
  wf::DefinitionStore store;
  EXO_RETURN_NOT_OK(BuildDefinitions(&store));
  org::Directory dir;
  EXO_RETURN_NOT_OK(BuildOrganization(&dir));
  ManualClock clock;

  wfjournal::MemoryJournal journal;
  std::string instance_id;
  {
    wfrt::ProgramRegistry programs;
    EXO_RETURN_NOT_OK(BindPrograms(&programs));
    wfrt::EngineOptions opts;
    opts.clock = &clock;
    wfrt::Engine engine(&store, &programs, opts);
    EXO_RETURN_NOT_OK(engine.AttachJournal(&journal));
    EXO_RETURN_NOT_OK(engine.AttachOrganization(&dir));

    data::Container input = *data::Container::Create(store.types(), "Loan");
    EXO_RETURN_NOT_OK(input.Set("Amount", data::Value(int64_t{7500})));
    EXO_ASSIGN_OR_RETURN(instance_id,
                         engine.StartProcess("LoanApproval", &input));
    EXO_RETURN_NOT_OK(engine.Run());

    std::printf("\nworklists after the automatic steps:\n");
    for (const char* person : {"ann", "bob", "maria"}) {
      auto items = engine.worklists()->WorklistOf(person);
      std::printf("  %-6s has %zu item(s)\n", person, items.size());
    }

    // Nobody picks it up for two minutes: the deadline fires and the
    // branch manager is notified.
    clock.Advance(2LL * 60 * 1000 * 1000);
    for (const org::Notification& n : engine.CheckDeadlines()) {
      std::printf("  [notify] activity %s overdue; notified:", n.activity.c_str());
      for (const std::string& r : n.recipients) std::printf(" %s", r.c_str());
      std::printf("\n");
    }

    std::printf("\n-- the engine host crashes here (journal survives) --\n");
  }

  // Fresh engine, same journal: forward recovery resumes the instance
  // exactly where it stopped — the Review work item is reposted.
  {
    wfrt::ProgramRegistry programs;
    EXO_RETURN_NOT_OK(BindPrograms(&programs));
    wfrt::EngineOptions opts;
    opts.clock = &clock;
    wfrt::Engine engine(&store, &programs, opts);
    EXO_RETURN_NOT_OK(engine.AttachJournal(&journal));
    EXO_RETURN_NOT_OK(engine.AttachOrganization(&dir));
    EXO_RETURN_NOT_OK(engine.Recover());
    std::printf("recovered; Review is %s\n",
                wf::ActivityStateName(*engine.StateOf(instance_id, "Review")));

    auto items = engine.worklists()->WorklistOf("bob");
    if (items.empty()) return Status::Internal("work item not reposted");
    std::printf("bob claims the review (it vanishes from ann's list)\n");
    EXO_RETURN_NOT_OK(engine.Claim(items[0]->id, "bob"));
    std::printf("  ann now has %zu item(s)\n",
                engine.worklists()->WorklistOf("ann").size());
    EXO_RETURN_NOT_OK(engine.ExecuteWorkItem(items[0]->id, "bob"));

    EXO_ASSIGN_OR_RETURN(data::Container out, engine.OutputOf(instance_id));
    std::printf("\nloan %s; Disburse=%s Reject=%s\n",
                out.Get("Approved")->as_long() == 1 ? "APPROVED" : "REJECTED",
                wf::ActivityStateName(*engine.StateOf(instance_id, "Disburse")),
                wf::ActivityStateName(*engine.StateOf(instance_id, "Reject")));
  }
  return Status::OK();
}

}  // namespace

int main() {
  std::printf("== loan approval: organization, worklists, recovery ==\n\n");
  Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
