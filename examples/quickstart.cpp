// Quickstart: define a process, bind programs, run it, inspect the audit
// trail. Demonstrates the core public API surface in ~100 lines:
//
//   DefinitionStore + ProcessBuilder  -> the process template
//   ProgramRegistry                   -> executable bindings
//   Engine                            -> instantiation and navigation
//
// The process models a tiny document review: Draft, then parallel
// Spellcheck and Factcheck, then Publish only if both succeeded,
// otherwise Reject (dead path elimination skips the branch not taken).

#include <cstdio>

#include "wf/builder.h"
#include "wfrt/engine.h"

using namespace exotica;  // NOLINT: example brevity

namespace {

Status RunQuickstart() {
  wf::DefinitionStore store;

  // 1. Declare the programs activities will invoke.
  for (const char* name : {"draft", "spellcheck", "factcheck", "publish",
                           "reject"}) {
    wf::ProgramDeclaration decl;
    decl.name = name;
    EXO_RETURN_NOT_OK(store.DeclareProgram(std::move(decl)));
  }

  // 2. Describe the process: activities, control flow, data flow.
  wf::ProcessBuilder b(&store, "ReviewDocument");
  b.Description("draft -> {spellcheck, factcheck} -> publish | reject");
  b.Program("Draft", "draft");
  b.Program("Spellcheck", "spellcheck");
  b.Program("Factcheck", "factcheck");
  b.Program("Publish", "publish");
  b.Program("Reject", "reject").OrJoin();
  b.Connect("Draft", "Spellcheck", "RC = 0");
  b.Connect("Draft", "Factcheck", "RC = 0");
  b.Connect("Spellcheck", "Publish", "RC = 0");
  b.Connect("Factcheck", "Publish", "RC = 0");
  b.Connect("Spellcheck", "Reject", "RC <> 0");
  b.Connect("Factcheck", "Reject", "RC <> 0");
  b.MapToOutput("Publish", {{"RC", "RC"}});
  EXO_RETURN_NOT_OK(b.Register());

  // 3. Bind the programs. The factcheck "finds a problem" to show the
  //    reject path; flip the 1 to 0 to publish instead.
  wfrt::ProgramRegistry programs;
  auto bind_const = [&](const char* name, int64_t rc) {
    return programs.Bind(name, [rc](const data::Container&,
                                    data::Container* out,
                                    const wfrt::ProgramContext& ctx) {
      std::printf("  [program] %-10s (activity %s, attempt %d) -> RC=%d\n",
                  ctx.activity.c_str(), ctx.activity.c_str(), ctx.attempt,
                  static_cast<int>(rc));
      return out->Set("RC", data::Value(rc));
    });
  };
  EXO_RETURN_NOT_OK(bind_const("draft", 0));
  EXO_RETURN_NOT_OK(bind_const("spellcheck", 0));
  EXO_RETURN_NOT_OK(bind_const("factcheck", 1));
  EXO_RETURN_NOT_OK(bind_const("publish", 0));
  EXO_RETURN_NOT_OK(bind_const("reject", 0));

  // 4. Run an instance.
  wfrt::Engine engine(&store, &programs);
  EXO_ASSIGN_OR_RETURN(std::string id,
                       engine.RunToCompletion("ReviewDocument"));

  // 5. Inspect the outcome.
  std::printf("\ninstance %s finished; activity states:\n", id.c_str());
  for (const char* name : {"Draft", "Spellcheck", "Factcheck", "Publish",
                           "Reject"}) {
    EXO_ASSIGN_OR_RETURN(wf::ActivityState state, engine.StateOf(id, name));
    std::printf("  %-11s %s\n", name, wf::ActivityStateName(state));
  }

  std::printf("\naudit trail:\n");
  for (const std::string& line : engine.audit().CompactTrace(id)) {
    std::printf("  %s\n", line.c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  std::printf("== quickstart: a document-review process ==\n");
  Status st = RunQuickstart();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
