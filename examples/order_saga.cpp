// Order fulfilment as a saga (paper §4.1), end to end through the
// Exotica/FMTM pipeline:
//
//   spec text --ParseSpec/CompileSpec--> FDL --import--> process template
//
// with the subtransactions running against real ACID sites of the
// multidatabase substrate. We run the saga twice: once where everything
// commits, once where the warehouse refuses (unilateral abort at commit)
// so the payment and the reservation are compensated in reverse order.

#include <cstdio>

#include "atm/subtxn.h"
#include "exotica/fmtm.h"
#include "exotica/programs.h"
#include "txn/multidb.h"
#include "wfrt/engine.h"

using namespace exotica;  // NOLINT: example brevity

namespace {

constexpr const char* kSpec = R"(
SAGA 'FulfilOrder'
  STEP 'ChargeCard';
  STEP 'ReserveStock';
  STEP 'Ship';
END 'FulfilOrder'
)";

Status SetupSubTxns(txn::MultiDatabase* mdb, atm::MultiDbRunner* runner) {
  EXO_RETURN_NOT_OK(mdb->AddSite("payments"));
  EXO_RETURN_NOT_OK(mdb->AddSite("warehouse"));

  EXO_RETURN_NOT_OK(runner->Register(
      {"ChargeCard", "payments",
       [](txn::Transaction& t) {
         EXO_ASSIGN_OR_RETURN(data::Value bal, t.Get("balance"));
         int64_t current = bal.is_null() ? 500 : bal.as_long();
         if (current < 120) return Status::Aborted("insufficient funds");
         return t.Put("balance", data::Value(current - 120));
       },
       [](txn::Transaction& t) {
         EXO_ASSIGN_OR_RETURN(data::Value bal, t.Get("balance"));
         return t.Put("balance", data::Value(bal.as_long() + 120));
       }}));

  EXO_RETURN_NOT_OK(runner->Register(
      {"ReserveStock", "warehouse",
       [](txn::Transaction& t) { return t.Put("widget_reserved", data::Value(int64_t{1})); },
       [](txn::Transaction& t) { return t.Erase("widget_reserved"); }}));

  EXO_RETURN_NOT_OK(runner->Register(
      {"Ship", "warehouse",
       [](txn::Transaction& t) { return t.Put("shipped", data::Value(int64_t{1})); },
       [](txn::Transaction& t) { return t.Erase("shipped"); }}));
  return Status::OK();
}

Status PrintState(txn::MultiDatabase* mdb) {
  EXO_ASSIGN_OR_RETURN(txn::Site * pay, mdb->site("payments"));
  EXO_ASSIGN_OR_RETURN(txn::Site * wh, mdb->site("warehouse"));
  EXO_ASSIGN_OR_RETURN(data::Value bal, pay->ReadCommitted("balance"));
  EXO_ASSIGN_OR_RETURN(data::Value res, wh->ReadCommitted("widget_reserved"));
  EXO_ASSIGN_OR_RETURN(data::Value shp, wh->ReadCommitted("shipped"));
  std::printf("  payments.balance = %s, warehouse.reserved = %s, shipped = %s\n",
              bal.ToString().c_str(), res.ToString().c_str(),
              shp.ToString().c_str());
  return Status::OK();
}

Status RunOnce(bool warehouse_refuses_ship) {
  txn::MultiDatabase mdb;
  atm::MultiDbRunner runner(&mdb);
  EXO_RETURN_NOT_OK(SetupSubTxns(&mdb, &runner));

  // The Figure-5 pipeline: spec -> FDL -> import -> template.
  wf::DefinitionStore store;
  EXO_ASSIGN_OR_RETURN(exo::FmtmOutput compiled,
                       exo::CompileSpec(kSpec, &store));
  std::printf("compiled spec into %zu processes; FDL is %zu bytes\n",
              compiled.processes.size(), compiled.fdl.size());

  wfrt::ProgramRegistry programs;
  EXO_RETURN_NOT_OK(
      exo::BindSagaPrograms(*compiled.saga, store, &runner, &programs));

  if (warehouse_refuses_ship) {
    // The warehouse site unilaterally aborts its next commit — the
    // ReserveStock subtransaction. The saga must then compensate the
    // already-committed ChargeCard.
    EXO_ASSIGN_OR_RETURN(txn::Site * wh, mdb.site("warehouse"));
    wh->FailNextCommits(1);
  }

  wfrt::Engine engine(&store, &programs);
  EXO_ASSIGN_OR_RETURN(std::string id, engine.StartProcess("FulfilOrder"));
  EXO_RETURN_NOT_OK(engine.Run());

  EXO_ASSIGN_OR_RETURN(data::Container out, engine.OutputOf(id));
  bool committed = out.Get("RC")->as_long() == 0;
  bool compensated = out.Get("Compensated")->as_long() == 1;
  std::printf("saga %s%s\n", committed ? "COMMITTED" : "ABORTED",
              compensated ? " (compensation block ran)" : "");
  EXO_RETURN_NOT_OK(PrintState(&mdb));
  return Status::OK();
}

}  // namespace

int main() {
  std::printf("== order fulfilment saga via Exotica/FMTM ==\n");
  std::printf("\n-- run 1: everything commits --\n");
  Status st = RunOnce(false);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\n-- run 2: the warehouse unilaterally refuses --\n");
  st = RunOnce(true);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
